// Theorem 1: the multi-pass streaming implementation of Algorithm 1.
//
// The stream is scanned one pass per iteration (pipelined — see below), the
// weight of a constraint is never stored: it is recomputed on the fly as
// rate^{a}, where a counts the stored successful-iteration bases the
// constraint violates (exactly the proof of Theorem 1), and the eps-net is
// drawn with a one-pass with-replacement weighted reservoir (Chao [14]
// aggregate, src/core/sampling.h).
//
// Pipelining: iteration t's violator scan (against basis B_t) and iteration
// t+1's sample pass are fused into one pass. While B_t's success is unknown
// until the pass ends, both candidate weight functions — with and without
// B_t counted — are available on the fly, so the pass fills two reservoirs
// and keeps the right one afterwards. This gives 1 pass per iteration plus
// the initial sampling pass, matching the paper's O(nu * r) pass bound; a
// simpler 2-passes-per-iteration mode is available for comparison.

#ifndef LPLOW_MODELS_STREAMING_STREAMING_SOLVER_H_
#define LPLOW_MODELS_STREAMING_STREAMING_SOLVER_H_

#include <cmath>
#include <span>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/core/sampling.h"
#include "src/models/streaming/stream.h"
#include "src/runtime/metrics.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {
namespace stream {

struct StreamingOptions {
  int r = 2;
  EpsNetConfig net;
  /// Fuse violation scan and next sample into one pass (paper-faithful).
  bool pipeline = true;
  /// Ablation hooks (experiment E13); 0 = paper values.
  double weight_rate_override = 0;
  double eps_override = 0;
  size_t sample_size_override = 0;
  /// Iteration cap; 0 = automatic (ClarksonIterationCap).
  size_t max_iterations = 0;
  uint64_t seed = 0x57AE4131ULL;
};

struct StreamingStats {
  size_t n = 0;
  size_t sample_size = 0;
  size_t passes = 0;
  size_t iterations = 0;
  size_t successful_iterations = 0;
  size_t bases_stored = 0;
  size_t peak_items = 0;   // Peak constraints held simultaneously.
  size_t peak_bytes = 0;   // Their serialized size.
  size_t violation_tests = 0;
  bool direct_solve = false;
};

namespace internal {

/// Weight of a constraint under the stored-bases weight function:
/// rate^{#bases violated}. Exponents are capped well below double overflow.
template <LpTypeProblem P>
double OnTheFlyWeight(const P& problem,
                      const std::vector<typename P::Value>& basis_values,
                      const typename P::Constraint& c, double rate,
                      size_t* violation_tests) {
  double w = 1.0;
  for (const auto& v : basis_values) {
    ++*violation_tests;
    if (problem.Violates(v, c)) w *= rate;
  }
  return w;
}

}  // namespace internal

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>> SolveStreaming(
    const P& problem, ConstraintStream<typename P::Constraint>& input,
    const StreamingOptions& options, StreamingStats* stats) {
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;
  StreamingStats local;
  StreamingStats& st = stats ? *stats : local;
  st = StreamingStats{};

  const size_t n = input.size();
  st.n = n;
  const size_t nu = problem.CombinatorialDimension();
  const size_t lambda = problem.VcDimension();
  const double eps = options.eps_override > 0
                         ? options.eps_override
                         : AlgorithmEpsilon(nu, std::max<size_t>(n, 1),
                                            options.r);
  const double rate = options.weight_rate_override > 0
                          ? options.weight_rate_override
                          : WeightIncreaseRate(std::max<size_t>(n, 1),
                                               options.r);
  const size_t m = options.sample_size_override > 0
                       ? std::min(options.sample_size_override, n)
                       : EpsNetSampleSize(eps, lambda, options.net, nu + 1, n);
  st.sample_size = m;
  const size_t base_passes = input.passes_started();

  SpaceMeter space;
  Rng rng(options.seed);

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("streaming.solves")->Increment();
  runtime::ScopedTimer solve_timer(
      metrics.GetTimer("streaming.solve_seconds"));

  auto finish = [&](BasisResult<Value, Constraint> result)
      -> Result<BasisResult<Value, Constraint>> {
    st.passes = input.passes_started() - base_passes;
    st.peak_items = space.peak_items();
    st.peak_bytes = space.peak_bytes();
    metrics.GetCounter("streaming.passes")->Increment(st.passes);
    metrics.GetCounter("streaming.iterations")->Increment(st.iterations);
    return result;
  };

  if (n <= m || n <= nu + 1) {
    // Sample budget covers the stream: read it whole in one pass.
    st.direct_solve = true;
    input.Reset();
    std::vector<Constraint> all;
    all.reserve(n);
    size_t bytes = 0;
    while (auto c = input.Next()) {
      bytes += problem.ConstraintBytes(*c);
      all.push_back(std::move(*c));
    }
    space.Acquire(all.size(), bytes);
    auto result = problem.SolveBasis(std::span<const Constraint>(all));
    return finish(std::move(result));
  }

  const size_t max_iters = options.max_iterations
                               ? options.max_iterations
                               : ClarksonIterationCap(nu, options.r);

  // Stored successful bases: constraints + their f values (the weight
  // function of the proof of Theorem 1).
  std::vector<std::vector<Constraint>> bases;
  std::vector<Value> basis_values;
  auto basis_bytes = [&](const std::vector<Constraint>& b) {
    size_t total = 0;
    for (const auto& c : b) total += problem.ConstraintBytes(c);
    return total;
  };

  // --- initial sampling pass (uniform weights; no bases yet).
  std::vector<Constraint> sample;
  {
    MultiChaoReservoir<Constraint> res(m, &rng);
    input.Reset();
    while (auto c = input.Next()) res.Offer(*c, 1.0);
    if (res.empty()) return Status::InvalidArgument("empty stream");
    sample = res.Samples();
  }
  size_t sample_mem = 0;
  for (const auto& c : sample) sample_mem += problem.ConstraintBytes(c);
  space.Acquire(sample.size(), sample_mem);

  for (size_t iter = 0; iter < max_iters; ++iter) {
    ++st.iterations;
    auto basis = problem.SolveBasis(
        std::span<const Constraint>(sample.data(), sample.size()));
    space.Acquire(basis.basis.size(), basis_bytes(basis.basis));

    // --- violator scan against basis.value fused (optionally) with the next
    // iteration's sampling.
    double total_weight = 0;
    double violator_weight = 0;
    size_t violator_count = 0;
    MultiChaoReservoir<Constraint> res_no(m, &rng);   // B_t unsuccessful.
    MultiChaoReservoir<Constraint> res_yes(m, &rng);  // B_t successful.
    if (options.pipeline) {
      space.Acquire(2 * m, 2 * sample_mem);  // Two candidate reservoirs.
    } else {
      space.Acquire(m, sample_mem);
    }
    input.Reset();
    while (auto c = input.Next()) {
      double w = internal::OnTheFlyWeight(problem, basis_values, *c, rate,
                                          &st.violation_tests);
      total_weight += w;
      ++st.violation_tests;
      bool violates = problem.Violates(basis.value, *c);
      if (violates) {
        violator_weight += w;
        ++violator_count;
      }
      if (options.pipeline) {
        res_no.Offer(*c, w);
        res_yes.Offer(*c, violates ? w * rate : w);
      }
    }

    if (violator_count == 0) {
      ++st.successful_iterations;  // Vacuous eps-net success.
      space.Release(options.pipeline ? 2 * m : m, 0);
      return finish(std::move(basis));
    }

    bool success = violator_weight <= eps * total_weight;
    if (success) {
      ++st.successful_iterations;
      bases.push_back(basis.basis);
      basis_values.push_back(basis.value);
      ++st.bases_stored;
      // Basis stays resident (accounted at Acquire above).
    } else {
      space.Release(basis.basis.size(), basis_bytes(basis.basis));
    }

    if (options.pipeline) {
      sample = success ? res_yes.Samples() : res_no.Samples();
      space.Release(2 * m, 2 * sample_mem);  // Candidates collapse into one.
    } else {
      // Separate sampling pass under the updated weight function.
      MultiChaoReservoir<Constraint> res(m, &rng);
      input.Reset();
      while (auto c = input.Next()) {
        double w = internal::OnTheFlyWeight(problem, basis_values, *c, rate,
                                            &st.violation_tests);
        res.Offer(*c, w);
      }
      sample = res.Samples();
      space.Release(m, sample_mem);
    }
    sample_mem = 0;
    for (const auto& c : sample) sample_mem += problem.ConstraintBytes(c);
  }

  // Las Vegas fallback (effectively unreachable with sane sample sizes):
  // solve directly rather than return a possibly-wrong answer.
  LPLOW_LOG(kWarning) << "SolveStreaming hit iteration cap; direct fallback";
  input.Reset();
  std::vector<Constraint> all;
  all.reserve(n);
  while (auto c = input.Next()) all.push_back(std::move(*c));
  space.Acquire(all.size(), 0);
  st.direct_solve = true;
  return finish(problem.SolveBasis(std::span<const Constraint>(all)));
}

}  // namespace stream
}  // namespace lplow

#endif  // LPLOW_MODELS_STREAMING_STREAMING_SOLVER_H_

// SolveStreaming is a header template (streaming_solver.h).

#include "src/models/streaming/streaming_solver.h"

namespace lplow {
namespace stream {
// (Intentionally empty.)
}  // namespace stream
}  // namespace lplow

// Theorem 2: the coordinator-model implementation of Algorithm 1, with the
// Lemma 3.7 two-round weighted-sampling protocol.
//
// Each site keeps its local constraints and their weights; the coordinator
// never materializes the input. One iteration of Algorithm 1 costs three
// rounds:
//
//   R1 (weights):  coordinator asks for local totals; site i replies w(S_i)
//                  — and first applies the previous iteration's reweighting
//                  decision, which rides along in the request.
//   R2 (sample):   coordinator draws the multinomial split y_1..y_k of the m
//                  eps-net draws (Lemma 3.7) and requests y_i samples from
//                  site i; sites reply with serialized constraints.
//   R3 (violators): coordinator broadcasts the basis; site i replies its
//                  violator weight w(V_i) and count.
//
// All traffic is serialized through coord::Channel, so reported
// communication is byte-exact.
//
// Concurrency: with CoordinatorOptions::runtime.num_threads > 1 the k sites
// of each round run in parallel on a runtime::ThreadPool (the protocol's
// sites are independent between barriers). Each site owns its RNG stream and
// per-site reply slot, replies are merged in site order at the round
// barrier, and Channel accounting is order-independent — so bases, byte
// counts, and round counts are bit-identical for every thread count.

#ifndef LPLOW_MODELS_COORDINATOR_COORDINATOR_SOLVER_H_
#define LPLOW_MODELS_COORDINATOR_COORDINATOR_SOLVER_H_

#include <cmath>
#include <memory>
#include <span>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/core/sampling.h"
#include "src/models/coordinator/channel.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {
namespace coord {

struct CoordinatorOptions {
  int r = 2;
  EpsNetConfig net;
  size_t max_iterations = 0;  // 0 = automatic.
  /// On hitting the iteration cap: ship everything and solve directly
  /// (Las Vegas, default) or return Status::SamplingFailed (useful for
  /// measuring pure protocol cost under a fixed iteration budget).
  bool fallback_to_direct = true;
  uint64_t seed = 0xC004D1ACULL;
  /// Concurrent site emulation; the default is the serial reference path.
  /// Results are bit-identical for every thread count.
  runtime::RuntimeOptions runtime;
};

struct CoordinatorStats {
  size_t n = 0;
  size_t k = 0;
  size_t sample_size = 0;
  size_t rounds = 0;
  size_t total_bytes = 0;
  size_t messages = 0;
  size_t iterations = 0;
  size_t successful_iterations = 0;
  bool direct_solve = false;
  size_t threads = 1;
};

/// One site: holds its constraint partition and local weights, and answers
/// the three request kinds. Site logic only sees serialized messages.
template <LpTypeProblem P>
class Site {
 public:
  Site(const P* problem, std::vector<typename P::Constraint> constraints,
       uint64_t seed)
      : problem_(problem),
        constraints_(std::move(constraints)),
        weights_(constraints_.size(), 1.0),
        rng_(seed) {}

  /// R1: apply the previous reweighting decision (if any), reply total weight.
  Message HandleWeightRequest(const Message& request) {
    BitReader r(request);
    uint8_t apply = *r.GetU8();
    if (apply) {
      double rate = *r.GetDouble();
      auto basis_value = DeserializeValueMarker(&r);
      for (size_t i = 0; i < constraints_.size(); ++i) {
        if (problem_->Violates(basis_value, constraints_[i])) {
          weights_[i] *= rate;
        }
      }
    }
    double total = 0;
    for (double w : weights_) total += w;
    BitWriter w;
    w.PutDouble(total);
    return w.Release();
  }

  /// R2: reply `count` weighted draws (with replacement) from the local set.
  Message HandleSampleRequest(const Message& request) {
    BitReader r(request);
    uint64_t count = *r.GetVarU64();
    BitWriter w;
    w.PutVarU64(count);
    std::vector<size_t> picks = SampleLocal(static_cast<size_t>(count));
    for (size_t idx : picks) {
      problem_->SerializeConstraint(constraints_[idx], &w);
    }
    return w.Release();
  }

  /// R3: reply (violator weight, violator count) against the basis encoded
  /// in the request; remember the basis value for the R1 reweighting.
  Message HandleViolatorRequest(const Message& request) {
    BitReader r(request);
    last_basis_value_ = DeserializeValueMarker(&r);
    double vw = 0;
    uint64_t vc = 0;
    for (size_t i = 0; i < constraints_.size(); ++i) {
      if (problem_->Violates(last_basis_value_, constraints_[i])) {
        vw += weights_[i];
        ++vc;
      }
    }
    BitWriter w;
    w.PutDouble(vw);
    w.PutVarU64(vc);
    return w.Release();
  }

  size_t local_size() const { return constraints_.size(); }
  const std::vector<typename P::Constraint>& constraints() const {
    return constraints_;
  }

  /// The basis value travels as the basis constraints; the site re-solves the
  /// tiny basis locally to recover f(B) (O(nu) constraints, negligible work,
  /// zero extra communication).
  typename P::Value DeserializeValueMarker(BitReader* r) {
    uint64_t size = *r->GetVarU64();
    std::vector<typename P::Constraint> basis;
    basis.reserve(size);
    for (uint64_t i = 0; i < size; ++i) {
      auto c = problem_->DeserializeConstraint(r);
      LPLOW_CHECK(c.ok());
      basis.push_back(std::move(*c));
    }
    return problem_->SolveValue(
        std::span<const typename P::Constraint>(basis));
  }

 private:
  std::vector<size_t> SampleLocal(size_t count) {
    std::vector<size_t> out;
    if (constraints_.empty()) return out;
    out.reserve(count);
    // Prefix sums + binary search: O(n_i + count log n_i) per request.
    std::vector<double> prefix(weights_.size());
    double acc = 0;
    for (size_t i = 0; i < weights_.size(); ++i) {
      acc += weights_[i];
      prefix[i] = acc;
    }
    for (size_t s = 0; s < count; ++s) {
      double target = rng_.UniformDouble() * acc;
      size_t pick = std::lower_bound(prefix.begin(), prefix.end(), target) -
                    prefix.begin();
      if (pick >= prefix.size()) pick = prefix.size() - 1;
      out.push_back(pick);
    }
    return out;
  }

  const P* problem_;
  std::vector<typename P::Constraint> constraints_;
  std::vector<double> weights_;
  Rng rng_;
  typename P::Value last_basis_value_{};
};

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>>
SolveCoordinator(const P& problem,
                 std::vector<std::vector<typename P::Constraint>> partitions,
                 const CoordinatorOptions& options, CoordinatorStats* stats,
                 Channel* channel_out = nullptr) {
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;
  CoordinatorStats local;
  CoordinatorStats& st = stats ? *stats : local;
  st = CoordinatorStats{};

  const size_t k = partitions.size();
  if (k == 0) return Status::InvalidArgument("no sites");
  size_t n = 0;
  for (const auto& part : partitions) n += part.size();
  st.n = n;
  st.k = k;

  const size_t nu = problem.CombinatorialDimension();
  const size_t lambda = problem.VcDimension();
  const double eps = AlgorithmEpsilon(nu, std::max<size_t>(n, 1), options.r);
  const double rate = WeightIncreaseRate(std::max<size_t>(n, 1), options.r);
  const size_t m = EpsNetSampleSize(eps, lambda, options.net, nu + 1, n);
  st.sample_size = m;
  const size_t max_iters = options.max_iterations
                               ? options.max_iterations
                               : ClarksonIterationCap(nu, options.r);

  Rng rng(options.seed);
  Channel local_channel(k);
  Channel& ch = channel_out ? *channel_out : local_channel;

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = runtime::ResolvePool(options.runtime, &owned_pool);
  runtime::SiteExecutor exec(pool, k);
  st.threads = exec.threads();

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("coordinator.solves")->Increment();
  runtime::ScopedTimer solve_timer(
      metrics.GetTimer("coordinator.solve_seconds"));

  std::vector<Site<P>> sites;
  sites.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    sites.emplace_back(&problem, std::move(partitions[i]), rng.Fork().engine()());
  }

  auto serialize_basis = [&](const std::vector<Constraint>& basis) {
    BitWriter w;
    w.PutVarU64(basis.size());
    for (const auto& c : basis) problem.SerializeConstraint(c, &w);
    return w.Release();
  };

  auto finish = [&](BasisResult<Value, Constraint> result)
      -> Result<BasisResult<Value, Constraint>> {
    st.rounds = ch.rounds();
    st.total_bytes = ch.total_bytes();
    st.messages = ch.messages();
    metrics.GetCounter("coordinator.rounds")->Increment(st.rounds);
    metrics.GetCounter("coordinator.bytes")->Increment(st.total_bytes);
    metrics.GetCounter("coordinator.iterations")->Increment(st.iterations);
    return result;
  };

  // Previous iteration's reweighting decision, delivered with the next R1.
  bool pending_update = false;
  std::vector<Constraint> pending_basis;

  for (size_t iter = 0; iter < max_iters; ++iter) {
    ++st.iterations;

    // ---- R1: weights (plus deferred reweighting instruction). Sites run
    // concurrently; replies land in per-site slots and are parsed in site
    // order after the barrier.
    ch.BeginRound();
    std::vector<double> site_weights(k);
    {
      BitWriter req;
      req.PutU8(pending_update ? 1 : 0);
      if (pending_update) {
        req.PutDouble(rate);
        Message basis_msg = serialize_basis(pending_basis);
        req.PutBytes(basis_msg.data(), basis_msg.size());
      }
      Message request = req.Release();
      std::vector<Message> replies(k);
      exec.RunRound([&](size_t i) {
        ch.ToSite(i, request);
        replies[i] = sites[i].HandleWeightRequest(request);
        ch.ToCoordinator(i, replies[i]);
      });
      for (size_t i = 0; i < k; ++i) {
        BitReader r(replies[i]);
        site_weights[i] = *r.GetDouble();
      }
      pending_update = false;
    }

    // ---- R2: the Lemma 3.7 multinomial split and local sampling. The
    // split is drawn on the coordinator (fixed RNG order); sites sample
    // concurrently from their own RNG streams, and the coordinator merges
    // replies in site order so the pooled sample is thread-count-invariant.
    ch.BeginRound();
    std::vector<Constraint> sample;
    sample.reserve(m);
    {
      std::vector<size_t> counts = MultinomialSplit(site_weights, m, &rng);
      std::vector<Message> replies(k);
      exec.RunRound([&](size_t i) {
        if (counts[i] == 0) return;
        BitWriter req;
        req.PutVarU64(counts[i]);
        Message request = req.Release();
        ch.ToSite(i, request);
        replies[i] = sites[i].HandleSampleRequest(request);
        ch.ToCoordinator(i, replies[i]);
      });
      for (size_t i = 0; i < k; ++i) {
        if (counts[i] == 0) continue;
        BitReader r(replies[i]);
        uint64_t cnt = *r.GetVarU64();
        for (uint64_t s = 0; s < cnt; ++s) {
          auto c = problem.DeserializeConstraint(&r);
          LPLOW_CHECK(c.ok());
          sample.push_back(std::move(*c));
        }
      }
    }
    if (sample.empty()) return Status::Internal("empty coordinator sample");

    // ---- local basis computation at the coordinator.
    auto basis = problem.SolveBasis(
        std::span<const Constraint>(sample.data(), sample.size()));

    // ---- R3: broadcast the basis; collect violator weights.
    ch.BeginRound();
    double violator_weight = 0;
    uint64_t violator_count = 0;
    double total_weight = 0;
    for (double w : site_weights) total_weight += w;
    {
      Message request = serialize_basis(basis.basis);
      std::vector<Message> replies(k);
      exec.RunRound([&](size_t i) {
        ch.ToSite(i, request);
        replies[i] = sites[i].HandleViolatorRequest(request);
        ch.ToCoordinator(i, replies[i]);
      });
      // Accumulate in site order: floating-point summation order is part of
      // the determinism guarantee.
      for (size_t i = 0; i < k; ++i) {
        BitReader r(replies[i]);
        violator_weight += *r.GetDouble();
        violator_count += *r.GetVarU64();
      }
    }

    if (violator_count == 0) {
      ++st.successful_iterations;  // Vacuous eps-net success.
      return finish(std::move(basis));
    }

    if (violator_weight <= eps * total_weight) {
      ++st.successful_iterations;
      pending_update = true;
      pending_basis = basis.basis;
    }
  }

  if (!options.fallback_to_direct) {
    st.rounds = ch.rounds();
    st.total_bytes = ch.total_bytes();
    st.messages = ch.messages();
    return Status::SamplingFailed("coordinator iteration cap reached");
  }
  // Las Vegas fallback: ship everything (counted!) and solve directly.
  LPLOW_LOG(kWarning) << "SolveCoordinator hit iteration cap; direct fallback";
  ch.BeginRound();
  std::vector<Constraint> all;
  for (size_t i = 0; i < k; ++i) {
    BitWriter w;
    for (const auto& c : sites[i].constraints()) {
      problem.SerializeConstraint(c, &w);
      all.push_back(c);
    }
    ch.ToCoordinator(i, w.buffer());
  }
  st.direct_solve = true;
  return finish(problem.SolveBasis(std::span<const Constraint>(all)));
}

}  // namespace coord
}  // namespace lplow

#endif  // LPLOW_MODELS_COORDINATOR_COORDINATOR_SOLVER_H_

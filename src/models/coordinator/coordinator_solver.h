// Theorem 2: the coordinator-model implementation of Algorithm 1, with the
// Lemma 3.7 two-round weighted-sampling protocol.
//
// The iteration scheme itself (sample -> basis -> violator scan ->
// reweight, the eps-net success test, the iteration-cap fallback) lives in
// the shared engine (src/engine/refinement.h); this file is the
// coordinator *transport*: how each step crosses the wire. Each site keeps
// its local constraints and weights in an engine::ConstraintStore; the
// coordinator never materializes the input. One iteration of Algorithm 1
// costs three rounds:
//
//   R1 (weights):  coordinator asks for local totals; site i replies w(S_i)
//                  — and first applies the previous iteration's reweighting
//                  decision, which rides along in the request.
//   R2 (sample):   coordinator draws the multinomial split y_1..y_k of the m
//                  eps-net draws (Lemma 3.7) and requests y_i samples from
//                  site i; sites reply with serialized constraints.
//   R3 (violators): coordinator broadcasts the basis; site i replies its
//                  violator weight w(V_i) and count.
//
// All traffic is serialized through coord::Channel, so reported
// communication is byte-exact.
//
// Concurrency: with CoordinatorOptions::runtime.num_threads > 1 the k sites
// of each round run in parallel on a runtime::ThreadPool (the protocol's
// sites are independent between barriers), per-site reply *parsing* runs
// inside the same round, site-local violator scans route through the
// store's pool-aware bitmap scan, and the engine runs oversized sample
// bases as pool tasks. Each site owns its RNG stream
// (Rng::ForkStream(site_id)) and per-site reply slot, replies are merged in
// site order at the round barrier, and Channel accounting is
// order-independent — so bases, byte counts, and round counts are
// bit-identical for every thread count.

#ifndef LPLOW_MODELS_COORDINATOR_COORDINATOR_SOLVER_H_
#define LPLOW_MODELS_COORDINATOR_COORDINATOR_SOLVER_H_

#include <cmath>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/core/clarkson.h"
#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/core/sampling.h"
#include "src/engine/constraint_store.h"
#include "src/engine/refinement.h"
#include "src/models/coordinator/channel.h"
#include "src/runtime/metrics.h"
#include "src/runtime/site_executor.h"
#include "src/runtime/thread_pool.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {
namespace coord {

struct CoordinatorOptions {
  int r = 2;
  EpsNetConfig net;
  size_t max_iterations = 0;  // 0 = automatic.
  /// On hitting the iteration cap: ship everything and solve directly
  /// (Las Vegas, default) or return Status::SamplingFailed (useful for
  /// measuring pure protocol cost under a fixed iteration budget).
  bool fallback_to_direct = true;
  uint64_t seed = 0xC004D1ACULL;
  /// Concurrent site emulation; the default is the serial reference path.
  /// Results are bit-identical for every thread count.
  runtime::RuntimeOptions runtime;
};

struct CoordinatorStats {
  size_t n = 0;
  size_t k = 0;
  size_t sample_size = 0;
  size_t rounds = 0;
  size_t total_bytes = 0;
  size_t messages = 0;
  size_t iterations = 0;
  size_t successful_iterations = 0;
  size_t sample_bytes = 0;  // Serialized bytes of all eps-net samples drawn.
  bool direct_solve = false;
  size_t threads = 1;
};

/// One site: holds its constraint partition and local weights in an
/// engine::ConstraintStore, and answers the three request kinds. Site logic
/// only sees serialized messages.
template <LpTypeProblem P>
class Site {
 public:
  Site(const P* problem, std::vector<typename P::Constraint> constraints,
       Rng rng, engine::ScanOptions scan)
      : problem_(problem),
        store_(std::move(constraints)),
        rng_(std::move(rng)),
        scan_(scan) {}

  /// R1: apply the previous reweighting decision (if any), reply total weight.
  /// The reweight is against the basis the site just scanned in R3, so the
  /// fused path reuses that scan's bitmap instead of re-testing every
  /// constraint (identical weights either way).
  Message HandleWeightRequest(const Message& request) {
    BitReader r(request);
    uint8_t apply = *r.GetU8();
    if (apply) {
      double rate = *r.GetDouble();
      auto basis_value = DeserializeValueMarker(&r);
      store_.View().ScaleViolatorsFused(*problem_, basis_value, rate, scan_);
    }
    BitWriter w;
    w.PutDouble(store_.View().TotalWeight());
    return w.Release();
  }

  /// R2: reply `count` weighted draws (with replacement) from the local set.
  Message HandleSampleRequest(const Message& request) {
    BitReader r(request);
    uint64_t count = *r.GetVarU64();
    BitWriter w;
    w.PutVarU64(count);
    for (size_t idx :
         store_.View().SampleIndices(static_cast<size_t>(count), &rng_)) {
      problem_->SerializeConstraint(store_.items()[idx], &w);
    }
    return w.Release();
  }

  /// R3: reply (violator weight, violator count) against the basis encoded
  /// in the request; remember the basis value for the R1 reweighting.
  Message HandleViolatorRequest(const Message& request) {
    BitReader r(request);
    last_basis_value_ = DeserializeValueMarker(&r);
    engine::ViolatorStats stats =
        store_.View().ScanViolators(*problem_, last_basis_value_, scan_);
    BitWriter w;
    w.PutDouble(stats.weight);
    w.PutVarU64(stats.count);
    return w.Release();
  }

  size_t local_size() const { return store_.size(); }
  const std::vector<typename P::Constraint>& constraints() const {
    return store_.items();
  }

  /// The basis value travels as the basis constraints; the site re-solves the
  /// tiny basis locally to recover f(B) (O(nu) constraints, negligible work,
  /// zero extra communication).
  typename P::Value DeserializeValueMarker(BitReader* r) {
    uint64_t size = *r->GetVarU64();
    std::vector<typename P::Constraint> basis;
    basis.reserve(size);
    for (uint64_t i = 0; i < size; ++i) {
      auto c = problem_->DeserializeConstraint(r);
      LPLOW_CHECK(c.ok());
      basis.push_back(std::move(*c));
    }
    return problem_->SolveValue(
        std::span<const typename P::Constraint>(basis));
  }

 private:
  const P* problem_;
  engine::ConstraintStore<typename P::Constraint> store_;
  Rng rng_;
  engine::ScanOptions scan_;
  typename P::Value last_basis_value_{};
};

namespace internal {

/// The coordinator-model RefinementTransport: R1+R2 produce the sample,
/// R3 is the violator scan, reweighting is deferred into the next R1.
template <LpTypeProblem P>
class CoordinatorTransport {
 public:
  using Constraint = typename P::Constraint;
  using Value = typename P::Value;

  CoordinatorTransport(const P& problem, std::vector<Site<P>>& sites,
                       Channel& channel, runtime::SiteExecutor& exec,
                       Rng& rng, const engine::RefinementPolicy& policy,
                       CoordinatorStats& stats)
      : problem_(problem),
        sites_(sites),
        ch_(channel),
        exec_(exec),
        rng_(rng),
        policy_(policy),
        st_(stats),
        site_weights_(sites.size()) {}

  Result<std::vector<Constraint>> NextSample() {
    const size_t k = sites_.size();

    // ---- R1: weights (plus deferred reweighting instruction). Sites run
    // concurrently; replies land in per-site slots and are parsed in site
    // order after the barrier.
    ch_.BeginRound();
    {
      BitWriter req;
      req.PutU8(pending_update_ ? 1 : 0);
      if (pending_update_) {
        req.PutDouble(policy_.rate);
        Message basis_msg = SerializeBasis(pending_basis_);
        req.PutBytes(basis_msg.data(), basis_msg.size());
      }
      Message request = req.Release();
      std::vector<Message> replies(k);
      exec_.RunRound([&](size_t i) {
        ch_.ToSite(i, request);
        replies[i] = sites_[i].HandleWeightRequest(request);
        ch_.ToCoordinator(i, replies[i]);
      });
      for (size_t i = 0; i < k; ++i) {
        BitReader r(replies[i]);
        site_weights_[i] = *r.GetDouble();
      }
      pending_update_ = false;
    }

    // ---- R2: the Lemma 3.7 multinomial split and local sampling. The
    // split is drawn on the coordinator (fixed RNG order); sites sample
    // from their own RNG streams and their replies are *parsed* inside the
    // round too (per-site slots, pure decoding), then merged in site order
    // so the pooled sample is thread-count-invariant.
    ch_.BeginRound();
    std::vector<Constraint> sample;
    sample.reserve(policy_.sample_size);
    {
      std::vector<size_t> counts =
          MultinomialSplit(site_weights_, policy_.sample_size, &rng_);
      std::vector<std::vector<Constraint>> parsed(k);
      exec_.RunRound([&](size_t i) {
        if (counts[i] == 0) return;
        BitWriter req;
        req.PutVarU64(counts[i]);
        Message request = req.Release();
        ch_.ToSite(i, request);
        Message reply = sites_[i].HandleSampleRequest(request);
        ch_.ToCoordinator(i, reply);
        BitReader r(reply);
        uint64_t cnt = *r.GetVarU64();
        parsed[i].reserve(cnt);
        for (uint64_t s = 0; s < cnt; ++s) {
          auto c = problem_.DeserializeConstraint(&r);
          LPLOW_CHECK(c.ok());
          parsed[i].push_back(std::move(*c));
        }
      });
      for (auto& site_sample : parsed) {
        for (auto& c : site_sample) sample.push_back(std::move(c));
      }
    }
    if (sample.empty()) return Status::Internal("empty coordinator sample");
    return sample;
  }

  engine::ViolatorScan ScanViolators(
      const BasisResult<Value, Constraint>& basis) {
    const size_t k = sites_.size();
    ch_.BeginRound();
    engine::ViolatorScan scan;
    for (double w : site_weights_) scan.total_weight += w;
    Message request = SerializeBasis(basis.basis);
    std::vector<Message> replies(k);
    exec_.RunRound([&](size_t i) {
      ch_.ToSite(i, request);
      replies[i] = sites_[i].HandleViolatorRequest(request);
      ch_.ToCoordinator(i, replies[i]);
    });
    // Accumulate in site order: floating-point summation order is part of
    // the determinism guarantee.
    for (size_t i = 0; i < k; ++i) {
      BitReader r(replies[i]);
      scan.violator_weight += *r.GetDouble();
      scan.violator_count += *r.GetVarU64();
    }
    return scan;
  }

  void EndIteration(bool success, const BasisResult<Value, Constraint>& basis) {
    if (success) {
      pending_update_ = true;
      pending_basis_ = basis.basis;
    }
  }

  void OnTerminal() {}

  /// Las Vegas fallback: ship everything (counted!). Serialization runs
  /// per-site on the pool; the gathered set merges in site order.
  std::vector<Constraint> GatherAll() {
    const size_t k = sites_.size();
    ch_.BeginRound();
    std::vector<Constraint> all;
    std::vector<std::vector<Constraint>> shipped(k);
    exec_.RunRound([&](size_t i) {
      BitWriter w;
      for (const auto& c : sites_[i].constraints()) {
        problem_.SerializeConstraint(c, &w);
        shipped[i].push_back(c);
      }
      ch_.ToCoordinator(i, w.buffer());
    });
    for (auto& site_constraints : shipped) {
      for (auto& c : site_constraints) all.push_back(std::move(c));
    }
    return all;
  }

  Status IterationCapStatus() {
    FlushChannelStats();
    return Status::SamplingFailed("coordinator iteration cap reached");
  }

  Result<BasisResult<Value, Constraint>> Finish(
      BasisResult<Value, Constraint> result) {
    FlushChannelStats();
    auto& metrics = runtime::MetricsRegistry::Global();
    metrics.GetCounter("coordinator.rounds")->Increment(st_.rounds);
    metrics.GetCounter("coordinator.bytes")->Increment(st_.total_bytes);
    metrics.GetCounter("coordinator.iterations")->Increment(st_.iterations);
    return result;
  }

 private:
  Message SerializeBasis(const std::vector<Constraint>& basis) {
    BitWriter w;
    w.PutVarU64(basis.size());
    for (const auto& c : basis) problem_.SerializeConstraint(c, &w);
    return w.Release();
  }

  void FlushChannelStats() {
    st_.rounds = ch_.rounds();
    st_.total_bytes = ch_.total_bytes();
    st_.messages = ch_.messages();
  }

  const P& problem_;
  std::vector<Site<P>>& sites_;
  Channel& ch_;
  runtime::SiteExecutor& exec_;
  Rng& rng_;
  const engine::RefinementPolicy& policy_;
  CoordinatorStats& st_;
  std::vector<double> site_weights_;
  // Previous iteration's reweighting decision, delivered with the next R1.
  bool pending_update_ = false;
  std::vector<Constraint> pending_basis_;
};

}  // namespace internal

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>>
SolveCoordinator(const P& problem,
                 std::vector<std::vector<typename P::Constraint>> partitions,
                 const CoordinatorOptions& options, CoordinatorStats* stats,
                 Channel* channel_out = nullptr) {
  CoordinatorStats local;
  CoordinatorStats& st = stats ? *stats : local;
  st = CoordinatorStats{};

  const size_t k = partitions.size();
  if (k == 0) return Status::InvalidArgument("no sites");
  size_t n = 0;
  for (const auto& part : partitions) n += part.size();
  st.n = n;
  st.k = k;

  Rng rng(options.seed);
  Channel local_channel(k);
  Channel& ch = channel_out ? *channel_out : local_channel;

  std::unique_ptr<runtime::ThreadPool> owned_pool;
  runtime::ThreadPool* pool = runtime::ResolvePool(options.runtime, &owned_pool);
  runtime::SiteExecutor exec(pool, k);
  st.threads = exec.threads();

  auto& metrics = runtime::MetricsRegistry::Global();
  metrics.GetCounter("coordinator.solves")->Increment();
  runtime::ScopedTimer solve_timer(
      metrics.GetTimer("coordinator.solve_seconds"));

  const size_t nu = problem.CombinatorialDimension();
  engine::RefinementPolicy policy =
      engine::MakePolicy(problem, n, options.r, options.net);
  policy.max_iterations = options.max_iterations
                              ? options.max_iterations
                              : ClarksonIterationCap(nu, options.r);
  policy.fallback_to_direct = options.fallback_to_direct;
  policy.name = "SolveCoordinator";
  policy.pool = pool;
  engine::ApplyRuntimeOptions(policy, options.runtime, options.seed);
  st.sample_size = policy.sample_size;

  std::vector<Site<P>> sites;
  sites.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    sites.emplace_back(&problem, std::move(partitions[i]), rng.ForkStream(i),
                       policy.scan_options());
  }

  internal::CoordinatorTransport<P> transport(problem, sites, ch, exec, rng,
                                              policy, st);
  engine::IterationCounters counters{&st.iterations,
                                     &st.successful_iterations,
                                     &st.direct_solve, &st.sample_bytes};
  return engine::RunRefinement(problem, transport, policy, counters);
}

}  // namespace coord
}  // namespace lplow

#endif  // LPLOW_MODELS_COORDINATOR_COORDINATOR_SOLVER_H_

// Communication accounting for the coordinator model: k sites, each linked
// to the coordinator by a two-way channel. All protocol traffic flows through
// Channel as real serialized byte buffers, so the communication totals the
// benchmarks report are exact wire sizes.
//
// A "round" (paper Section 1) is one coordinator->sites broadcast phase
// followed by one sites->coordinator reply phase.
//
// Thread safety: ToSite/ToCoordinator may be called concurrently for
// different sites (the runtime::SiteExecutor emulates the sites of one round
// in parallel); the byte/message counters are relaxed atomics, so the totals
// are order-independent sums — byte-identical to the serial path for every
// thread count. BeginRound and the accessors belong to the coordinator
// thread, between round barriers.

#ifndef LPLOW_MODELS_COORDINATOR_CHANNEL_H_
#define LPLOW_MODELS_COORDINATOR_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/util/bit_stream.h"
#include "src/util/logging.h"

namespace lplow {
namespace coord {

using Message = std::vector<uint8_t>;

/// Byte-exact accounting of coordinator <-> site traffic.
class Channel {
 public:
  explicit Channel(size_t num_sites) : num_sites_(num_sites) {}

  /// Marks the start of a communication round (coordinator thread only).
  void BeginRound() { ++rounds_; }

  /// Records a coordinator -> site message and delivers it.
  void ToSite(size_t site, const Message& msg) {
    LPLOW_CHECK_LT(site, num_sites_);
    bytes_to_sites_.fetch_add(msg.size(), std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a site -> coordinator message and delivers it.
  void ToCoordinator(size_t site, const Message& msg) {
    LPLOW_CHECK_LT(site, num_sites_);
    bytes_to_coordinator_.fetch_add(msg.size(), std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }

  size_t rounds() const { return rounds_; }
  size_t messages() const { return messages_.load(std::memory_order_relaxed); }
  size_t total_bytes() const { return bytes_to_sites() + bytes_to_coordinator(); }
  size_t total_bits() const { return total_bytes() * 8; }
  size_t bytes_to_sites() const {
    return bytes_to_sites_.load(std::memory_order_relaxed);
  }
  size_t bytes_to_coordinator() const {
    return bytes_to_coordinator_.load(std::memory_order_relaxed);
  }
  size_t num_sites() const { return num_sites_; }

 private:
  size_t num_sites_;
  size_t rounds_ = 0;
  std::atomic<size_t> messages_{0};
  std::atomic<size_t> bytes_to_sites_{0};
  std::atomic<size_t> bytes_to_coordinator_{0};
};

}  // namespace coord
}  // namespace lplow

#endif  // LPLOW_MODELS_COORDINATOR_CHANNEL_H_

// SolveCoordinator is a header template (coordinator_solver.h).

#include "src/models/coordinator/coordinator_solver.h"

namespace lplow {
namespace coord {
// (Intentionally empty.)
}  // namespace coord
}  // namespace lplow

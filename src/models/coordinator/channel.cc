// Channel is header-only; this file anchors the module in the build.

#include "src/models/coordinator/channel.h"

namespace lplow {
namespace coord {
// (Intentionally empty.)
}  // namespace coord
}  // namespace lplow

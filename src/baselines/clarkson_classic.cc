#include "src/baselines/clarkson_classic.h"

#include <cmath>

namespace lplow {
namespace baselines {

namespace {
// Classic Clarkson: eps = 1/(3 nu), sample ~ 6 nu^2 (independent of n),
// doubling weights; iterations O(nu log n).
constexpr double kClassicRate = 2.0;

size_t ClassicIterationCap(size_t nu, size_t n) {
  double logn = std::log2(static_cast<double>(n) + 2.0);
  return static_cast<size_t>(30.0 * static_cast<double>(nu) * logn) + 30;
}
}  // namespace

ClarksonOptions ClassicClarksonOptions(size_t nu, size_t n, uint64_t seed) {
  ClarksonOptions opt;
  opt.weight_rate_override = kClassicRate;
  opt.eps_override = 1.0 / (3.0 * static_cast<double>(nu));
  opt.sample_size_override = 6 * nu * nu;
  opt.max_iterations = ClassicIterationCap(nu, n);
  opt.seed = seed;
  return opt;
}

stream::StreamingOptions ClassicClarksonStreamingOptions(size_t nu, size_t n,
                                                         uint64_t seed) {
  stream::StreamingOptions opt;
  opt.weight_rate_override = kClassicRate;
  opt.eps_override = 1.0 / (3.0 * static_cast<double>(nu));
  opt.sample_size_override = 6 * nu * nu;
  opt.max_iterations = ClassicIterationCap(nu, n);
  opt.seed = seed;
  return opt;
}

}  // namespace baselines
}  // namespace lplow

// Templates live in the header.

#include "src/baselines/tree_merge.h"

namespace lplow {
namespace baselines {
// (Intentionally empty.)
}  // namespace baselines
}  // namespace lplow

// Classic Clarkson/Welzl iterative-reweighting baseline: the pre-paper
// standard with weight-doubling (rate 2) and an n-independent sample size of
// ~6 nu^2, needing O(nu log n) iterations — versus the paper's n^{1/r} rate
// and O(nu r) iterations. Runs through the same ClarksonSolve/SolveStreaming
// code paths via the override hooks, so the comparison isolates exactly the
// reweighting design choice (experiments E6/E13).

#ifndef LPLOW_BASELINES_CLARKSON_CLASSIC_H_
#define LPLOW_BASELINES_CLARKSON_CLASSIC_H_

#include <cstddef>

#include "src/core/clarkson.h"
#include "src/models/streaming/streaming_solver.h"

namespace lplow {
namespace baselines {

/// Sequential classic-Clarkson options for a problem with combinatorial
/// dimension nu on n constraints.
ClarksonOptions ClassicClarksonOptions(size_t nu, size_t n, uint64_t seed);

/// Streaming classic-Clarkson options (the [13]/[26]-era configuration:
/// doubling weights, fixed-size sample, O(nu log n) passes).
stream::StreamingOptions ClassicClarksonStreamingOptions(size_t nu, size_t n,
                                                         uint64_t seed);

}  // namespace baselines
}  // namespace lplow

#endif  // LPLOW_BASELINES_CLARKSON_CLASSIC_H_

// Chan-Chen-style multi-pass streaming algorithm for 2-d linear programming
// [13], the prior-work comparator of experiment E6.
//
// Solves   min y   s.t.   y >= s_i x + t_i   (lower-envelope form; general
// 2-d LPs with a bounded optimum rotate into this form). Each pass probes
// the convex upper envelope E(x) = max_i (s_i x + t_i) at `probes` grid
// points of the current interval, keeping only O(probes) state; convexity
// localizes the minimum to one grid cell, shrinking the interval by the
// probe factor per pass. The candidate vertex (intersection of the two
// supporting lines at the bracketing probes) is verified exactly against the
// stream, so termination is exact, not approximate.
//
// This reproduces the [13] trade-off shape: space O(n^{1/r}) <-> passes
// O(r) for d = 2 (their general-d bound O(r^{d-1}) passes is what Result 1
// improves exponentially).

#ifndef LPLOW_BASELINES_CHAN_CHEN_2D_H_
#define LPLOW_BASELINES_CHAN_CHEN_2D_H_

#include <vector>

#include "src/models/streaming/stream.h"
#include "src/util/status.h"

namespace lplow {
namespace baselines {

/// A lower-bounding line y >= slope * x + intercept (double precision).
struct Line2d {
  double slope = 0;
  double intercept = 0;
  double ValueAt(double x) const { return slope * x + intercept; }
};

struct ChanChen2dOptions {
  /// Grid probes per pass (the space knob: s = n^{1/r} gives ~r passes).
  size_t probes = 64;
  /// Initial x search interval half-width.
  double x_bound = 1e7;
  /// Verification tolerance for the exact termination test.
  double tol = 1e-7;
  size_t max_passes = 200;
};

struct ChanChen2dStats {
  size_t passes = 0;
  size_t peak_items = 0;  // O(probes) working state.
  bool converged = false;
};

struct ChanChen2dResult {
  double x = 0;
  double y = 0;
};

/// Runs the prune-and-search on a stream of lines. Fails with
/// Status::Unbounded when all slopes share a strict sign.
Result<ChanChen2dResult> SolveChanChen2d(
    stream::ConstraintStream<Line2d>& input, const ChanChen2dOptions& options,
    ChanChen2dStats* stats);

}  // namespace baselines
}  // namespace lplow

#endif  // LPLOW_BASELINES_CHAN_CHEN_2D_H_

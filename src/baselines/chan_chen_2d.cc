#include "src/baselines/chan_chen_2d.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/util/logging.h"

namespace lplow {
namespace baselines {

namespace {

struct Probe {
  double x = 0;
  double value = -std::numeric_limits<double>::infinity();
  Line2d top;  // A line attaining the envelope at x (max slope tie-break).
};

}  // namespace

Result<ChanChen2dResult> SolveChanChen2d(
    stream::ConstraintStream<Line2d>& input, const ChanChen2dOptions& options,
    ChanChen2dStats* stats) {
  ChanChen2dStats local;
  ChanChen2dStats& st = stats ? *stats : local;
  st = ChanChen2dStats{};
  LPLOW_CHECK_GE(options.probes, 2u);

  double lo = -options.x_bound;
  double hi = options.x_bound;
  bool have_candidate = false;
  double cand_x = 0;
  double cand_pred = 0;

  for (size_t pass = 0; pass < options.max_passes; ++pass) {
    // Probe grid: evenly spaced points of [lo, hi], plus the candidate
    // vertex from the previous pass (for the exact termination test).
    std::vector<Probe> probes(options.probes + (have_candidate ? 1 : 0));
    for (size_t i = 0; i < options.probes; ++i) {
      probes[i].x = lo + (hi - lo) * static_cast<double>(i) /
                             static_cast<double>(options.probes - 1);
    }
    if (have_candidate) probes.back().x = cand_x;
    st.peak_items = std::max(st.peak_items, probes.size());

    ++st.passes;
    input.Reset();
    size_t n_lines = 0;
    bool has_nonneg = false, has_nonpos = false;
    while (auto line = input.Next()) {
      ++n_lines;
      if (line->slope >= 0) has_nonneg = true;
      if (line->slope <= 0) has_nonpos = true;
      for (Probe& p : probes) {
        double v = line->ValueAt(p.x);
        if (v > p.value + options.tol ||
            (v > p.value - options.tol && line->slope > p.top.slope)) {
          p.value = std::max(p.value, v);
          p.top = *line;
        }
      }
    }
    if (n_lines == 0) return Status::InvalidArgument("empty stream");
    if (!has_nonneg || !has_nonpos) {
      return Status::Unbounded("envelope slopes all one sign");
    }

    // Exact termination test: is the candidate vertex on the envelope?
    if (have_candidate) {
      const Probe& c = probes.back();
      // The candidate was built as the intersection of two supporting lines;
      // if no stream line rises above it, convexity certifies optimality.
      double cand_y = c.value;
      bool optimal = true;
      // c.value is the envelope at cand_x; the candidate's predicted y was
      // the intersection value, which equals the envelope there iff optimal.
      if (std::fabs(cand_y - cand_pred) > options.tol *
                                               std::max(1.0, std::fabs(cand_y))) {
        optimal = false;
      }
      if (optimal) {
        st.converged = true;
        return ChanChen2dResult{cand_x, cand_y};
      }
    }

    // Locate the grid cell bracketing the minimum of the convex envelope:
    // the first index where the envelope stops decreasing.
    size_t best = 0;
    for (size_t i = 1; i < options.probes; ++i) {
      if (probes[i].value < probes[best].value) best = i;
    }
    size_t cell_lo = best == 0 ? 0 : best - 1;
    size_t cell_hi = std::min(best + 1, options.probes - 1);
    double new_lo = probes[cell_lo].x;
    double new_hi = probes[cell_hi].x;

    // Candidate vertex: intersection of the supporting lines at the cell
    // boundaries (they have slopes of opposite sign around the minimum).
    const Line2d& l1 = probes[cell_lo].top;
    const Line2d& l2 = probes[cell_hi].top;
    if (std::fabs(l1.slope - l2.slope) > options.tol) {
      cand_x = (l2.intercept - l1.intercept) / (l1.slope - l2.slope);
      cand_x = std::clamp(cand_x, new_lo, new_hi);
      cand_pred = std::max(l1.ValueAt(cand_x), l2.ValueAt(cand_x));
      have_candidate = true;
    } else {
      // Flat cell: its envelope value is the optimum.
      st.converged = true;
      return ChanChen2dResult{probes[best].x, probes[best].value};
    }
    lo = new_lo;
    hi = new_hi;
  }

  LPLOW_LOG(kWarning) << "ChanChen2d pass cap reached";
  return ChanChen2dResult{cand_x, cand_pred};
}

}  // namespace baselines
}  // namespace lplow

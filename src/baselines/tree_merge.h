// Distributed baselines in the coordinator model:
//
// * ShipAll        — every site sends its whole partition; 1 round, O(n bit)
//                    communication (the naive floor every algorithm beats).
// * TreeMergeOnce  — each site sends only the basis of its local subproblem;
//                    the coordinator solves the union of bases. 1 round and
//                    tiny communication, but NOT exact for LP-type problems
//                    (bases do not compose); its error rate is itself an
//                    experiment (E6).
// * IteratedTreeMerge — Daume et al. [26]-style repair: re-broadcast the
//                    merged solution, sites reply with local bases of their
//                    violated constraints, repeat until no violations.
//                    Exact (f strictly increases every round, and
//                    termination certifies global feasibility), but the
//                    round count is data-dependent — the trade-off the
//                    paper's Theorem 2 improves on.
//
// Per-site storage rides on the engine's span-based ConstraintView — the
// same layer beneath the model solvers — so violator collection and byte
// accounting share one implementation with Theorems 1-3.

#ifndef LPLOW_BASELINES_TREE_MERGE_H_
#define LPLOW_BASELINES_TREE_MERGE_H_

#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/constraint_store.h"
#include "src/models/coordinator/channel.h"
#include "src/util/status.h"

namespace lplow {
namespace baselines {

struct TreeMergeStats {
  size_t rounds = 0;
  size_t total_bytes = 0;
  size_t k = 0;
};

/// One-shot basis merge. The result may be WRONG (value below f(S)); callers
/// compare against an exact solve to measure the error rate.
template <LpTypeProblem P>
BasisResult<typename P::Value, typename P::Constraint> TreeMergeOnce(
    const P& problem,
    const std::vector<std::vector<typename P::Constraint>>& partitions,
    TreeMergeStats* stats) {
  using Constraint = typename P::Constraint;
  TreeMergeStats local;
  TreeMergeStats& st = stats ? *stats : local;
  st = TreeMergeStats{};
  st.k = partitions.size();
  st.rounds = 1;

  std::vector<Constraint> merged;
  for (const auto& part : partitions) {
    engine::ConstraintView<Constraint> site{std::span<const Constraint>(part)};
    auto basis = problem.SolveBasis(site.items());
    engine::ConstraintView<Constraint> basis_view(
        std::span<const Constraint>(basis.basis));
    st.total_bytes += engine::SerializedBytes(problem, basis_view);
    merged.insert(merged.end(), basis.basis.begin(), basis.basis.end());
  }
  return problem.SolveBasis(std::span<const Constraint>(merged));
}

/// Iterated merge: exact, round count data-dependent.
template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>>
IteratedTreeMerge(const P& problem,
                  const std::vector<std::vector<typename P::Constraint>>&
                      partitions,
                  TreeMergeStats* stats, size_t max_rounds = 10000) {
  using Constraint = typename P::Constraint;
  TreeMergeStats local;
  TreeMergeStats& st = stats ? *stats : local;
  st = TreeMergeStats{};
  st.k = partitions.size();

  // Per-site scan workspaces give the sites the engine's SIMD collection
  // path (identical violator sets either way; the repair loop re-collects
  // against a new value every round, so the SoA mirror is the win here,
  // not bitmap fusion).
  std::vector<engine::ScanWorkspace> workspaces(partitions.size());
  std::vector<engine::ConstraintView<Constraint>> sites;
  sites.reserve(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    sites.emplace_back(std::span<const Constraint>(partitions[i]),
                       &workspaces[i]);
  }

  std::vector<Constraint> working;
  auto current = problem.SolveBasis(std::span<const Constraint>(working));
  while (st.rounds < max_rounds) {
    ++st.rounds;
    // Broadcast the current basis (value certificate) to every site.
    engine::ConstraintView<Constraint> basis_view(
        std::span<const Constraint>(current.basis));
    st.total_bytes +=
        engine::SerializedBytes(problem, basis_view) * sites.size();

    // Sites reply with a local basis over their violated constraints.
    std::vector<Constraint> additions;
    for (const auto& site : sites) {
      std::vector<Constraint> violated =
          site.CollectViolators(problem, current.value, engine::ScanOptions{});
      if (violated.empty()) continue;
      auto local_basis =
          problem.SolveBasis(std::span<const Constraint>(violated));
      for (const auto& c : local_basis.basis) {
        st.total_bytes += problem.ConstraintBytes(c);
        additions.push_back(c);
      }
      if (local_basis.basis.empty()) {
        // Degenerate (e.g. empty-basis problems): fall back to one violated
        // constraint so progress is guaranteed.
        st.total_bytes += problem.ConstraintBytes(violated.front());
        additions.push_back(violated.front());
      }
    }
    if (additions.empty()) return current;  // Nothing violates anywhere.

    working = current.basis;
    working.insert(working.end(), additions.begin(), additions.end());
    current = problem.SolveBasis(std::span<const Constraint>(working));
  }
  return Status::Internal("IteratedTreeMerge round cap reached");
}

}  // namespace baselines
}  // namespace lplow

#endif  // LPLOW_BASELINES_TREE_MERGE_H_

// Template lives in the header.

#include "src/baselines/ship_all.h"

namespace lplow {
namespace baselines {
// (Intentionally empty.)
}  // namespace baselines
}  // namespace lplow

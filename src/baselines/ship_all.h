// The naive 1-round coordinator baseline: ship every constraint to the
// coordinator, solve locally. Exact; communication O(n * bit(S)).
//
// Storage rides on the engine's span-based ConstraintView, the same layer
// beneath the model solvers, so byte accounting and scans share one
// implementation.

#ifndef LPLOW_BASELINES_SHIP_ALL_H_
#define LPLOW_BASELINES_SHIP_ALL_H_

#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/constraint_store.h"

namespace lplow {
namespace baselines {

/// Cost accounting for the ship-all baseline.
struct ShipAllStats {
  size_t rounds = 0;
  size_t total_bytes = 0;
};

/// Ships every constraint to the coordinator and solves there. Exact;
/// the 1-round / O(n bit(S)) floor every algorithm is compared against.
template <LpTypeProblem P>
BasisResult<typename P::Value, typename P::Constraint> ShipAll(
    const P& problem,
    const std::vector<std::vector<typename P::Constraint>>& partitions,
    ShipAllStats* stats) {
  using Constraint = typename P::Constraint;
  ShipAllStats local;
  ShipAllStats& st = stats ? *stats : local;
  st = ShipAllStats{};
  st.rounds = 1;
  std::vector<Constraint> all;
  for (const auto& part : partitions) {
    engine::ConstraintView<Constraint> site{std::span<const Constraint>(part)};
    st.total_bytes += engine::SerializedBytes(problem, site);
    all.insert(all.end(), site.items().begin(), site.items().end());
  }
  return problem.SolveBasis(std::span<const Constraint>(all));
}

}  // namespace baselines
}  // namespace lplow

#endif  // LPLOW_BASELINES_SHIP_ALL_H_

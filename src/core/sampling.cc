#include "src/core/sampling.h"

namespace lplow {

std::vector<size_t> MultinomialSplit(const std::vector<double>& weights,
                                     size_t m, Rng* rng) {
  double total = 0;
  for (double w : weights) {
    LPLOW_CHECK_GE(w, 0.0);
    total += w;
  }
  std::vector<size_t> out(weights.size(), 0);
  if (total <= 0.0) return out;
  size_t remaining = m;
  double weight_left = total;
  for (size_t i = 0; i < weights.size() && remaining > 0; ++i) {
    if (i + 1 == weights.size()) {
      out[i] = remaining;
      break;
    }
    double p = weights[i] / weight_left;
    int64_t draw = rng->Binomial(static_cast<int64_t>(remaining), p);
    out[i] = static_cast<size_t>(draw);
    remaining -= out[i];
    weight_left -= weights[i];
    if (weight_left <= 0) break;
  }
  return out;
}

}  // namespace lplow

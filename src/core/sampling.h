// Weighted sampling primitives (paper reference [14], Chao 1982, plus
// Efraimidis-Spirakis for the without-replacement variant).
//
// MultiChaoReservoir draws m i.i.d. weighted samples (with replacement) in a
// SINGLE pass over a weighted stream: conceptually m independent single-item
// Chao reservoirs, processed in aggregate. When item i (weight w_i, running
// total W_i) arrives, each reservoir independently adopts it w.p. w_i/W_i, so
// the number of adopting slots is Binomial(m, w_i/W_i) and the adopting set
// is uniform — O(1 + #adoptions) expected work per item, O(m log n) total
// adoptions. This is the sampler behind the Theorem 1 streaming solver.

#ifndef LPLOW_CORE_SAMPLING_H_
#define LPLOW_CORE_SAMPLING_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/util/logging.h"
#include "src/util/rng.h"

namespace lplow {

/// m i.i.d. weighted samples (with replacement) in one pass.
template <typename T>
class MultiChaoReservoir {
 public:
  MultiChaoReservoir(size_t m, Rng* rng) : slots_(m), rng_(rng) {
    LPLOW_CHECK_GT(m, 0u);
    LPLOW_CHECK(rng != nullptr);
  }

  /// Offers the next stream item with weight w > 0 (items with w == 0 are
  /// skipped).
  void Offer(const T& item, double weight) {
    LPLOW_CHECK_GE(weight, 0.0);
    if (weight <= 0.0) return;
    total_weight_ += weight;
    ++offered_;
    double p = weight / total_weight_;
    int64_t adoptions = rng_->Binomial(static_cast<int64_t>(slots_.size()), p);
    if (adoptions <= 0) return;
    for (size_t slot : rng_->SampleDistinctIndices(
             slots_.size(), static_cast<size_t>(adoptions))) {
      slots_[slot] = item;
    }
  }

  /// The m samples. Valid only after at least one positive-weight Offer.
  const std::vector<T>& Samples() const {
    LPLOW_CHECK_GT(offered_, 0u);
    return slots_;
  }

  double total_weight() const { return total_weight_; }
  size_t offered() const { return offered_; }
  bool empty() const { return offered_ == 0; }

 private:
  std::vector<T> slots_;
  Rng* rng_;
  double total_weight_ = 0.0;
  size_t offered_ = 0;
};

/// m distinct weighted samples (without replacement) in one pass
/// (Efraimidis-Spirakis A-Res: key = u^{1/w}, keep the m largest keys).
template <typename T>
class EfraimidisSpirakisSampler {
 public:
  EfraimidisSpirakisSampler(size_t m, Rng* rng) : m_(m), rng_(rng) {
    LPLOW_CHECK_GT(m, 0u);
  }

  void Offer(const T& item, double weight) {
    if (weight <= 0.0) return;
    double u = rng_->UniformDouble();
    // log-space key for numerical stability: log(u)/w, larger is better.
    double key = std::log(std::max(u, 1e-300)) / weight;
    if (heap_.size() < m_) {
      heap_.push({key, item});
    } else if (key > heap_.top().first) {
      heap_.pop();
      heap_.push({key, item});
    }
  }

  /// Up to m items (fewer when the stream had fewer positive-weight items).
  std::vector<T> TakeSamples() {
    std::vector<T> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top().second);
      heap_.pop();
    }
    return out;
  }

 private:
  struct Entry {
    double first;
    T second;
    bool operator>(const Entry& o) const { return first > o.first; }
  };
  size_t m_;
  Rng* rng_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

/// Splits m multinomial draws across `weights` (the coordinator-side step of
/// the Lemma 3.7 protocol): returns counts y with sum(y) = m and
/// E[y_i] = m * weights[i] / sum(weights). Exact sequential binomial
/// splitting.
std::vector<size_t> MultinomialSplit(const std::vector<double>& weights,
                                     size_t m, Rng* rng);

}  // namespace lplow

#endif  // LPLOW_CORE_SAMPLING_H_

// epsilon-net sample sizes (paper Lemma 2.2, Haussler-Welzl):
//
//   m_{eps,lambda,delta} = max( 8*lambda/eps * log(8*lambda/eps),
//                               4/eps * log(2/delta) )
//
// i.i.d. weighted samples of this size form an eps-net w.p. >= 1 - delta.
//
// The theory constants exceed any laptop-scale n, so the solvers default to
// the same Theta(lambda * nu * n^{1/r}) functional form with constant ~1
// (`theory_constants = false`); correctness never depends on the choice (the
// meta-algorithm is Las Vegas), only the iteration count does — measured in
// experiment E7.

#ifndef LPLOW_CORE_EPS_NET_H_
#define LPLOW_CORE_EPS_NET_H_

#include <cstddef>
#include <cstdint>

namespace lplow {

struct EpsNetConfig {
  /// Use the literal Lemma 2.2 constants instead of the practical scaling.
  bool theory_constants = false;
  /// Multiplier on the practical sample size.
  double scale = 1.0;
  /// Failure probability delta for the theory formula.
  double delta = 1.0 / 3.0;
};

/// The literal Lemma 2.2 value m_{eps,lambda,delta}.
size_t EpsNetTheorySampleSize(double eps, size_t lambda, double delta);

/// Sample size used by the solvers: the theory value when
/// config.theory_constants, else ceil(scale * 3 * lambda / eps) — Clarkson's
/// moment bound, which preserves the Theta(lambda * nu * n^{1/r}) growth and
/// the Claim 3.2 success probability with a ~10x smaller constant than
/// Lemma 2.2. Always at least `floor_size` and, when clamp > 0, at most
/// clamp.
size_t EpsNetSampleSize(double eps, size_t lambda, const EpsNetConfig& config,
                        size_t floor_size, size_t clamp);

/// The paper's epsilon for Algorithm 1: 1 / (10 * nu * n^{1/r}).
double AlgorithmEpsilon(size_t nu, size_t n, int r);

/// n^{1/r}, the weight-increase rate of Algorithm 1.
double WeightIncreaseRate(size_t n, int r);

}  // namespace lplow

#endif  // LPLOW_CORE_EPS_NET_H_

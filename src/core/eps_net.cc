#include "src/core/eps_net.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lplow {

size_t EpsNetTheorySampleSize(double eps, size_t lambda, double delta) {
  LPLOW_CHECK_GT(eps, 0.0);
  LPLOW_CHECK_LT(eps, 1.0);
  LPLOW_CHECK_GT(delta, 0.0);
  double a = 8.0 * static_cast<double>(lambda) / eps;
  double term1 = a * std::log(a);
  double term2 = 4.0 / eps * std::log(2.0 / delta);
  return static_cast<size_t>(std::ceil(std::max(term1, term2)));
}

size_t EpsNetSampleSize(double eps, size_t lambda, const EpsNetConfig& config,
                        size_t floor_size, size_t clamp) {
  size_t m;
  if (config.theory_constants) {
    m = EpsNetTheorySampleSize(eps, lambda, config.delta);
  } else {
    // Clarkson's moment bound: a weighted sample of size m has expected
    // violator weight <= nu * w(S) / m, so m = 3 lambda / eps (lambda ~ nu)
    // gives E <= (eps/3) w(S) and, via Markov, the >= 2/3 per-iteration
    // success probability of Claim 3.2 — with a ~10x smaller constant than
    // the Haussler-Welzl bound of Lemma 2.2 (same Theta(n^{1/r}) growth).
    double practical = config.scale * 3.0 * static_cast<double>(lambda) / eps;
    m = static_cast<size_t>(std::ceil(practical));
  }
  m = std::max(m, floor_size);
  if (clamp > 0) m = std::min(m, clamp);
  return m;
}

double AlgorithmEpsilon(size_t nu, size_t n, int r) {
  LPLOW_CHECK_GE(r, 1);
  LPLOW_CHECK_GE(n, 1u);
  double rate = WeightIncreaseRate(n, r);
  return 1.0 / (10.0 * static_cast<double>(nu) * rate);
}

double WeightIncreaseRate(size_t n, int r) {
  LPLOW_CHECK_GE(r, 1);
  return std::pow(static_cast<double>(std::max<size_t>(n, 2)),
                  1.0 / static_cast<double>(r));
}

}  // namespace lplow

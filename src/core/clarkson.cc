// ClarksonSolve is a header template (src/core/clarkson.h); this translation
// unit exists to give the module a home for non-template definitions and to
// anchor the header's compilation in the library build.

#include "src/core/clarkson.h"

namespace lplow {
// (Intentionally empty.)
}  // namespace lplow

// Algorithm 1 of the paper: Clarkson-style iterative reweighting with eps-net
// sampling and weight-increase rate n^{1/r}, generic over any LpTypeProblem.
//
// This is the sequential reference implementation, operating on an in-memory
// constraint vector. The streaming / coordinator / MPC solvers implement the
// same iteration structure under their respective resource-accounting
// runtimes (Theorems 1-3) and are tested for agreement against this one.
//
// Las Vegas by default (loops until the violator set is empty, so the output
// is always correct); `monte_carlo` implements Remark 3.6 (declare FAIL when
// an iteration's violator weight exceeds eps * w(S) too many times).

#ifndef LPLOW_CORE_CLARKSON_H_
#define LPLOW_CORE_CLARKSON_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace lplow {

struct ClarksonOptions {
  /// The paper's r: weight rate n^{1/r}; expected O(nu * r) iterations.
  int r = 2;
  EpsNetConfig net;
  /// Ablation hooks (experiment E13): override the weight-increase rate
  /// (e.g. 2.0 for classic Clarkson/Welzl reweighting), the epsilon, or the
  /// sample size. 0 = use the paper's values.
  double weight_rate_override = 0;
  double eps_override = 0;
  size_t sample_size_override = 0;
  /// Remark 3.6: fail instead of retrying when too many iterations miss the
  /// eps-net success condition.
  bool monte_carlo = false;
  /// Iteration cap; 0 = automatic (40 * nu * r + 40, far above the
  /// (20/9) nu r bound of Lemma 3.3). In Las Vegas mode, hitting the cap
  /// falls back to a direct solve so the answer stays exact.
  size_t max_iterations = 0;
  uint64_t seed = 0xC1A4C50ULL;
};

struct ClarksonStats {
  size_t n = 0;
  size_t sample_size = 0;        // m per iteration.
  size_t iterations = 0;
  size_t successful_iterations = 0;
  size_t basis_solves = 0;
  size_t violation_tests = 0;    // Individual constraint checks.
  bool direct_solve = false;     // Input was small enough to solve directly.
  bool fallback_used = false;    // Las Vegas iteration-cap fallback.
  std::vector<uint8_t> success_history;  // 1 = successful iteration.
};

/// Computes the automatic iteration cap.
inline size_t ClarksonIterationCap(size_t nu, int r) {
  return 40 * nu * static_cast<size_t>(r) + 40;
}

template <LpTypeProblem P>
Result<BasisResult<typename P::Value, typename P::Constraint>> ClarksonSolve(
    const P& problem, std::span<const typename P::Constraint> constraints,
    const ClarksonOptions& options, ClarksonStats* stats) {
  using Constraint = typename P::Constraint;
  ClarksonStats local_stats;
  ClarksonStats& st = stats ? *stats : local_stats;
  st = ClarksonStats{};

  const size_t n = constraints.size();
  st.n = n;
  const size_t nu = problem.CombinatorialDimension();
  const size_t lambda = problem.VcDimension();
  const double eps = options.eps_override > 0
                         ? options.eps_override
                         : AlgorithmEpsilon(nu, std::max<size_t>(n, 1),
                                            options.r);
  const double rate = options.weight_rate_override > 0
                          ? options.weight_rate_override
                          : WeightIncreaseRate(std::max<size_t>(n, 1),
                                               options.r);
  const size_t m =
      options.sample_size_override > 0
          ? std::min(options.sample_size_override, n)
          : EpsNetSampleSize(eps, lambda, options.net, /*floor_size=*/nu + 1,
                             /*clamp=*/n);
  st.sample_size = m;

  if (n <= m || n <= nu + 1) {
    st.direct_solve = true;
    ++st.basis_solves;
    return problem.SolveBasis(constraints);
  }

  const size_t max_iters = options.max_iterations
                               ? options.max_iterations
                               : ClarksonIterationCap(nu, options.r);
  Rng rng(options.seed);
  std::vector<double> weights(n, 1.0);
  double total_weight = static_cast<double>(n);

  std::vector<Constraint> sample;
  sample.reserve(m);
  std::vector<size_t> violators;

  while (st.iterations < max_iters) {
    ++st.iterations;

    // --- eps-net sample: exact multinomial over the weights (m i.i.d.
    // weighted draws with replacement), via sequential binomial splitting.
    sample.clear();
    {
      size_t remaining = m;
      double weight_left = total_weight;
      for (size_t i = 0; i < n && remaining > 0; ++i) {
        double p = weight_left > 0 ? weights[i] / weight_left : 0.0;
        int64_t copies = rng.Binomial(static_cast<int64_t>(remaining), p);
        for (int64_t c = 0; c < copies; ++c) sample.push_back(constraints[i]);
        remaining -= static_cast<size_t>(copies);
        weight_left -= weights[i];
      }
    }
    if (sample.empty()) {
      return Status::Internal("empty eps-net sample");
    }

    // --- basis of the sample.
    ++st.basis_solves;
    auto basis = problem.SolveBasis(
        std::span<const Constraint>(sample.data(), sample.size()));

    // --- violator scan.
    violators.clear();
    double violator_weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      ++st.violation_tests;
      if (problem.Violates(basis.value, constraints[i])) {
        violators.push_back(i);
        violator_weight += weights[i];
      }
    }

    if (violators.empty()) {
      // Terminal iteration: w(V) = 0 is a (vacuous) eps-net success.
      ++st.successful_iterations;
      st.success_history.push_back(1);
      return basis;  // f(B) = f(S): done (Lemma 3.1).
    }

    if (violator_weight <= eps * total_weight) {
      // Successful iteration: reweight the violators.
      ++st.successful_iterations;
      st.success_history.push_back(1);
      for (size_t i : violators) {
        total_weight += (rate - 1.0) * weights[i];
        weights[i] *= rate;
      }
      // Guard against double overflow on extreme configurations by
      // renormalizing (ratios, hence sampling, are unchanged).
      if (total_weight > 1e290) {
        double scale = 1e-100;
        total_weight = 0;
        for (double& w : weights) {
          w *= scale;
          total_weight += w;
        }
      }
    } else {
      st.success_history.push_back(0);
      if (options.monte_carlo) {
        return Status::SamplingFailed(
            "iteration exceeded eps-net violator budget (Remark 3.6)");
      }
    }
  }

  if (options.monte_carlo) {
    return Status::SamplingFailed("iteration cap reached");
  }
  // Las Vegas promise: never return a wrong answer. Fall back to the direct
  // solve (this path is effectively unreachable for sane sample sizes and is
  // exercised only by failure-injection tests).
  st.fallback_used = true;
  ++st.basis_solves;
  return problem.SolveBasis(constraints);
}

}  // namespace lplow

#endif  // LPLOW_CORE_CLARKSON_H_

// The LP-type problem abstraction (paper Section 2.1, restricted to the
// class satisfying Properties (P1) and (P2) of Section 3).
//
// A Problem type models a pair (S, f): constraints are elements of S, and
// SolveBasis computes f on a finite sub(multi)set together with a basis — a
// minimal subset attaining the same f value. Violates implements the
// Property-(P2) violation test: constraint c violates a computed value v iff
// f(A + {c}) > f(A) where v = f(A), which for this problem class reduces to
// "the optimal point encoded in v does not satisfy c".
//
// Everything generic in the library (the Clarkson meta-algorithm and the
// three big-data model solvers) is a template over this concept, mirroring
// the paper's "works for any LP-type problem" guarantee.

#ifndef LPLOW_CORE_LP_TYPE_H_
#define LPLOW_CORE_LP_TYPE_H_

#include <concepts>
#include <cstddef>
#include <span>
#include <vector>

#include "src/util/bit_stream.h"
#include "src/util/status.h"

namespace lplow {

/// Result of a basis computation: the value f(A) and a basis B subseteq A
/// with f(B) = f(A).
template <typename ValueT, typename ConstraintT>
struct BasisResult {
  ValueT value;
  std::vector<ConstraintT> basis;
};

// clang-format off
template <typename P>
concept LpTypeProblem = requires(const P& p,
                                 const typename P::Constraint& c,
                                 const typename P::Value& v,
                                 std::span<const typename P::Constraint> cs,
                                 BitWriter* w, BitReader* r) {
  typename P::Constraint;
  typename P::Value;

  /// f and a basis on a finite sub(multi)set of constraints. Must accept the
  /// empty span (f of the empty set).
  { p.SolveBasis(cs) }
      -> std::same_as<BasisResult<typename P::Value, typename P::Constraint>>;

  /// f alone (no basis extraction): cheaper, used by basis pruning.
  { p.SolveValue(cs) } -> std::same_as<typename P::Value>;

  /// Property-(P2) violation test.
  { p.Violates(v, c) } -> std::convertible_to<bool>;

  /// Total order on the range R of f: negative/zero/positive.
  { p.CompareValues(v, v) } -> std::convertible_to<int>;

  /// Combinatorial dimension nu (max basis cardinality).
  { p.CombinatorialDimension() } -> std::convertible_to<size_t>;

  /// VC dimension lambda of the induced set system (S, R).
  { p.VcDimension() } -> std::convertible_to<size_t>;

  /// Exact wire size of a constraint: the bit(S) of Theorems 1-3.
  { p.ConstraintBytes(c) } -> std::convertible_to<size_t>;

  { p.SerializeConstraint(c, w) };
  { p.DeserializeConstraint(r) }
      -> std::same_as<Result<typename P::Constraint>>;
};
// clang-format on

/// Shared helper: greedily prunes `candidate` down to a minimal subset whose
/// f equals `target` (used by the problems' basis extraction). Performs
/// O(|candidate|) SolveValue calls on shrinking sets. Does not require P to
/// satisfy the full concept (it is used while defining problem classes).
template <typename P>
std::vector<typename P::Constraint> GreedyMinimizeBasis(
    const P& problem, std::vector<typename P::Constraint> candidate,
    const typename P::Value& target) {
  size_t i = 0;
  while (i < candidate.size()) {
    std::vector<typename P::Constraint> without;
    without.reserve(candidate.size() - 1);
    for (size_t j = 0; j < candidate.size(); ++j) {
      if (j != i) without.push_back(candidate[j]);
    }
    auto sub_value = problem.SolveValue(
        std::span<const typename P::Constraint>(without));
    if (problem.CompareValues(sub_value, target) == 0) {
      candidate = std::move(without);  // Constraint i was redundant.
    } else {
      ++i;
    }
  }
  return candidate;
}

}  // namespace lplow

#endif  // LPLOW_CORE_LP_TYPE_H_

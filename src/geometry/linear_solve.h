// Dense linear-system solving for the low-dimensional primitives: d x d
// systems for LP basis points, circumsphere centers (MEB), and SVM KKT
// systems. Gaussian elimination with partial pivoting; sizes are tiny
// (d+1 at most ~12), so O(d^3) is free.

#ifndef LPLOW_GEOMETRY_LINEAR_SOLVE_H_
#define LPLOW_GEOMETRY_LINEAR_SOLVE_H_

#include <vector>

#include "src/geometry/vec.h"
#include "src/util/status.h"

namespace lplow {

/// Row-major dense matrix.
class Mat {
 public:
  Mat() = default;
  Mat(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), a_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& At(size_t r, size_t c) { return a_[r * cols_ + c]; }
  double At(size_t r, size_t c) const { return a_[r * cols_ + c]; }

  /// Matrix-vector product; x.dim() must equal cols().
  Vec Apply(const Vec& x) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> a_;
};

/// Solves A x = b for square A. Fails with NumericalError when the pivot
/// magnitude falls below `singular_tol` (matrix numerically singular).
Result<Vec> SolveLinearSystem(Mat a, Vec b, double singular_tol = 1e-12);

/// Rank of A via row echelon with the given pivot tolerance.
size_t MatrixRank(Mat a, double tol = 1e-9);

/// Solves the least-squares system min ||A x - b||_2 via normal equations.
/// Suitable for the small well-conditioned systems used here.
Result<Vec> SolveLeastSquares(const Mat& a, const Vec& b,
                              double singular_tol = 1e-12);

}  // namespace lplow

#endif  // LPLOW_GEOMETRY_LINEAR_SOLVE_H_

#include "src/geometry/linear_solve.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {

Vec Mat::Apply(const Vec& x) const {
  LPLOW_CHECK_EQ(x.dim(), cols_);
  Vec out(rows_);
  for (size_t r = 0; r < rows_; ++r) {
    double s = 0;
    for (size_t c = 0; c < cols_; ++c) s += At(r, c) * x[c];
    out[r] = s;
  }
  return out;
}

Result<Vec> SolveLinearSystem(Mat a, Vec b, double singular_tol) {
  LPLOW_CHECK_EQ(a.rows(), a.cols());
  LPLOW_CHECK_EQ(a.rows(), b.dim());
  const size_t n = a.rows();
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;

  for (size_t col = 0; col < n; ++col) {
    // Partial pivot.
    size_t best = col;
    double best_abs = std::fabs(a.At(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(a.At(r, col));
      if (v > best_abs) {
        best = r;
        best_abs = v;
      }
    }
    if (best_abs < singular_tol) {
      return Status::NumericalError("singular system in SolveLinearSystem");
    }
    if (best != col) {
      for (size_t c = 0; c < n; ++c) std::swap(a.At(col, c), a.At(best, c));
      std::swap(b[col], b[best]);
    }
    double pivot = a.At(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a.At(r, col) / pivot;
      if (factor == 0.0) continue;
      a.At(r, col) = 0;
      for (size_t c = col + 1; c < n; ++c) a.At(r, c) -= factor * a.At(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  Vec x(n);
  for (size_t i = n; i-- > 0;) {
    double s = b[i];
    for (size_t c = i + 1; c < n; ++c) s -= a.At(i, c) * x[c];
    x[i] = s / a.At(i, i);
  }
  return x;
}

size_t MatrixRank(Mat a, double tol) {
  size_t rank = 0;
  size_t row = 0;
  for (size_t col = 0; col < a.cols() && row < a.rows(); ++col) {
    size_t best = row;
    double best_abs = std::fabs(a.At(row, col));
    for (size_t r = row + 1; r < a.rows(); ++r) {
      double v = std::fabs(a.At(r, col));
      if (v > best_abs) {
        best = r;
        best_abs = v;
      }
    }
    if (best_abs < tol) continue;
    if (best != row) {
      for (size_t c = 0; c < a.cols(); ++c) std::swap(a.At(row, c), a.At(best, c));
    }
    for (size_t r = row + 1; r < a.rows(); ++r) {
      double factor = a.At(r, col) / a.At(row, col);
      for (size_t c = col; c < a.cols(); ++c) a.At(r, c) -= factor * a.At(row, c);
    }
    ++row;
    ++rank;
  }
  return rank;
}

Result<Vec> SolveLeastSquares(const Mat& a, const Vec& b, double singular_tol) {
  LPLOW_CHECK_EQ(a.rows(), b.dim());
  const size_t n = a.cols();
  Mat ata(n, n);
  Vec atb(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double s = 0;
      for (size_t r = 0; r < a.rows(); ++r) s += a.At(r, i) * a.At(r, j);
      ata.At(i, j) = s;
    }
    double s = 0;
    for (size_t r = 0; r < a.rows(); ++r) s += a.At(r, i) * b[r];
    atb[i] = s;
  }
  return SolveLinearSystem(std::move(ata), std::move(atb), singular_tol);
}

}  // namespace lplow

// Halfspace constraints { x : a.x <= b } — the element type of the LP
// LP-type problem (each constraint's satisfying set S_X in the paper's
// Property (P1)). Includes serialization used by the communication models.

#ifndef LPLOW_GEOMETRY_HALFSPACE_H_
#define LPLOW_GEOMETRY_HALFSPACE_H_

#include <string>

#include "src/geometry/vec.h"
#include "src/util/bit_stream.h"
#include "src/util/status.h"

namespace lplow {

struct Halfspace {
  Vec a;     // Normal vector (dimension d).
  double b;  // Offset: constraint is a.x <= b.

  Halfspace() : b(0) {}
  Halfspace(Vec normal, double offset) : a(std::move(normal)), b(offset) {}

  size_t dim() const { return a.dim(); }

  /// Signed slack b - a.x; negative means violated.
  double Slack(const Vec& x) const { return b - a.Dot(x); }

  /// True when x satisfies the constraint within absolute tolerance tol
  /// (tol >= 0 accepts points slightly outside; the violation tests of
  /// Algorithm 1 use a small positive tol for robustness).
  bool Contains(const Vec& x, double tol) const { return Slack(x) >= -tol; }

  /// Exact serialized size in bytes: the bit(S) of Theorems 1-3 for LP.
  size_t SerializedBytes() const { return 4 + 8 * dim() + 8; }

  void Serialize(BitWriter* w) const;
  static Result<Halfspace> Deserialize(BitReader* r);

  std::string ToString() const;
};

}  // namespace lplow

#endif  // LPLOW_GEOMETRY_HALFSPACE_H_

#include "src/geometry/halfspace.h"

#include <sstream>

namespace lplow {

void Halfspace::Serialize(BitWriter* w) const {
  w->PutU32(static_cast<uint32_t>(dim()));
  for (size_t i = 0; i < dim(); ++i) w->PutDouble(a[i]);
  w->PutDouble(b);
}

Result<Halfspace> Halfspace::Deserialize(BitReader* r) {
  auto d = r->GetU32();
  if (!d.ok()) return d.status();
  // Each coordinate costs 8 bytes: a declared dimension the buffer cannot
  // hold is rejected before the allocation, not after reading past the end.
  if (*d > r->remaining() / 8) {
    return Status::OutOfRange("Halfspace dimension exceeds buffer");
  }
  Halfspace h;
  h.a = Vec(*d);
  for (size_t i = 0; i < *d; ++i) {
    auto x = r->GetDouble();
    if (!x.ok()) return x.status();
    h.a[i] = *x;
  }
  auto b = r->GetDouble();
  if (!b.ok()) return b.status();
  h.b = *b;
  return h;
}

std::string Halfspace::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < dim(); ++i) {
    if (i) oss << " + ";
    oss << a[i] << "*x" << i;
  }
  oss << " <= " << b;
  return oss.str();
}

}  // namespace lplow

// Small dense vectors for low-dimensional geometry. Dimension d is a runtime
// value (typically 2..10); Vec is a thin wrapper over std::vector<double>
// with the arithmetic the solvers need.

#ifndef LPLOW_GEOMETRY_VEC_H_
#define LPLOW_GEOMETRY_VEC_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace lplow {

class Vec {
 public:
  Vec() = default;
  explicit Vec(size_t dim, double fill = 0.0) : v_(dim, fill) {}
  Vec(std::initializer_list<double> init) : v_(init) {}
  explicit Vec(std::vector<double> v) : v_(std::move(v)) {}

  size_t dim() const { return v_.size(); }
  double& operator[](size_t i) { return v_[i]; }
  double operator[](size_t i) const { return v_[i]; }

  const std::vector<double>& data() const { return v_; }
  std::vector<double>& data() { return v_; }

  Vec operator+(const Vec& o) const;
  Vec operator-(const Vec& o) const;
  Vec operator*(double s) const;
  Vec operator/(double s) const { return *this * (1.0 / s); }
  Vec& operator+=(const Vec& o);
  Vec& operator-=(const Vec& o);
  Vec& operator*=(double s);

  /// Inner product; dimensions must match.
  double Dot(const Vec& o) const;

  double NormSquared() const { return Dot(*this); }
  double Norm() const;

  /// Maximum absolute coordinate.
  double InfNorm() const;

  /// Lexicographic three-way comparison with absolute tolerance `tol` per
  /// coordinate (coordinates closer than tol are considered equal).
  int LexCompare(const Vec& o, double tol) const;

  /// True when every coordinate differs by at most `tol`.
  bool ApproxEquals(const Vec& o, double tol) const;

  std::string ToString() const;

 private:
  std::vector<double> v_;
};

inline Vec operator*(double s, const Vec& v) { return v * s; }

}  // namespace lplow

#endif  // LPLOW_GEOMETRY_VEC_H_

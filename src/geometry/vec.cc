#include "src/geometry/vec.h"

#include <cmath>
#include <sstream>

#include "src/util/logging.h"

namespace lplow {

Vec Vec::operator+(const Vec& o) const {
  LPLOW_CHECK_EQ(dim(), o.dim());
  Vec out = *this;
  for (size_t i = 0; i < dim(); ++i) out.v_[i] += o.v_[i];
  return out;
}

Vec Vec::operator-(const Vec& o) const {
  LPLOW_CHECK_EQ(dim(), o.dim());
  Vec out = *this;
  for (size_t i = 0; i < dim(); ++i) out.v_[i] -= o.v_[i];
  return out;
}

Vec Vec::operator*(double s) const {
  Vec out = *this;
  for (double& x : out.v_) x *= s;
  return out;
}

Vec& Vec::operator+=(const Vec& o) {
  LPLOW_CHECK_EQ(dim(), o.dim());
  for (size_t i = 0; i < dim(); ++i) v_[i] += o.v_[i];
  return *this;
}

Vec& Vec::operator-=(const Vec& o) {
  LPLOW_CHECK_EQ(dim(), o.dim());
  for (size_t i = 0; i < dim(); ++i) v_[i] -= o.v_[i];
  return *this;
}

Vec& Vec::operator*=(double s) {
  for (double& x : v_) x *= s;
  return *this;
}

double Vec::Dot(const Vec& o) const {
  LPLOW_CHECK_EQ(dim(), o.dim());
  double out = 0;
  for (size_t i = 0; i < dim(); ++i) out += v_[i] * o.v_[i];
  return out;
}

double Vec::Norm() const { return std::sqrt(NormSquared()); }

double Vec::InfNorm() const {
  double out = 0;
  for (double x : v_) out = std::max(out, std::fabs(x));
  return out;
}

int Vec::LexCompare(const Vec& o, double tol) const {
  LPLOW_CHECK_EQ(dim(), o.dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (v_[i] < o.v_[i] - tol) return -1;
    if (v_[i] > o.v_[i] + tol) return 1;
  }
  return 0;
}

bool Vec::ApproxEquals(const Vec& o, double tol) const {
  if (dim() != o.dim()) return false;
  for (size_t i = 0; i < dim(); ++i) {
    if (std::fabs(v_[i] - o.v_[i]) > tol) return false;
  }
  return true;
}

std::string Vec::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (size_t i = 0; i < dim(); ++i) {
    if (i) oss << ", ";
    oss << v_[i];
  }
  oss << ")";
  return oss.str();
}

}  // namespace lplow

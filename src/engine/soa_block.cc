#include "src/engine/soa_block.h"

#include "src/util/logging.h"

namespace lplow {
namespace engine {

void SoaBlock::Reset(size_t dim, size_t aux) {
  shaped_ = true;
  n_ = 0;
  dim_ = dim;
  aux_ = aux;
  cols_.assign(dim + aux, {});
}

size_t SoaBlock::AppendLane() {
  LPLOW_CHECK(shaped_);
  if (n_ == padded()) {
    for (auto& col : cols_) col.resize(col.size() + kSoaBlockWidth, 0.0);
  }
  return n_++;
}

}  // namespace engine
}  // namespace lplow

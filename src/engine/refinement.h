// The unified Clarkson-style iterative-refinement engine (Algorithm 1's
// outer loop) shared by the three protocol models of Theorems 1-3.
//
// Every model runs the same scheme — sample by weight, solve a basis on the
// sample, scan for violators, reweight on success — and differs only in how
// the steps are *transported*: coordinator channel rounds, MPC tree
// broadcasts/converge-casts, or streaming passes. RunRefinement owns the
// loop (iteration counting, the eps-net success test, the terminal
// zero-violator exit, and the Las Vegas iteration-cap fallback); a
// RefinementTransport supplies the model-specific steps; RefinementPolicy
// carries the paper parameters (eps, the n^{1/r} weight rate, the sample
// size m, the iteration cap, and the fallback discipline).
//
// Determinism: the engine adds no randomness and no reordering — every RNG
// draw happens inside the transport in the same order the pre-engine
// per-model loops used, so bases, stats, and byte/round counters are
// bit-identical to the hand-rolled implementations
// (tests/engine_equivalence_test.cc pins this against captured goldens).
//
// Concurrency: oversized sample bases (and the fallback direct solve) are
// dispatched through the injectable runtime::SolveBackend seam
// (RefinementPolicy::solver_backend — e.g. a ShardedSolverService) or, by
// default, as a task on RefinementPolicy::pool; the transports route their
// violator scans through SiteExecutor / ConstraintView's pool-aware scans —
// identical results at every thread count and every shard count.
// docs/engine.md documents the contract and how to add a model.

#ifndef LPLOW_ENGINE_REFINEMENT_H_
#define LPLOW_ENGINE_REFINEMENT_H_

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "src/core/eps_net.h"
#include "src/core/lp_type.h"
#include "src/engine/constraint_store.h"
#include "src/runtime/metrics.h"
#include "src/runtime/solve_backend.h"
#include "src/runtime/thread_pool.h"
#include "src/runtime/trace.h"
#include "src/runtime/wire.h"
#include "src/util/logging.h"
#include "src/util/status.h"

namespace lplow {
namespace engine {

/// The paper parameters of one refinement run plus the engine knobs.
struct RefinementPolicy {
  /// Success threshold: an iteration succeeds iff w(V) <= eps * w(S).
  double eps = 0;
  /// Weight-increase rate n^{1/r} applied to violators on success.
  double rate = 1;
  /// Per-iteration eps-net sample size m.
  size_t sample_size = 0;
  /// Iteration cap (already resolved; the engine never computes it).
  size_t max_iterations = 0;
  /// On hitting the cap: gather everything and solve directly (Las Vegas,
  /// default) or return the transport's cap status.
  bool fallback_to_direct = true;
  /// Solver name for the fallback warning log ("SolveCoordinator", ...).
  const char* name = "RunRefinement";
  /// Basis solves on samples of at least `oversized_basis_threshold`
  /// constraints run as a pool task (null pool: inline, the serial path).
  runtime::ThreadPool* pool = nullptr;
  size_t oversized_basis_threshold = 4096;
  /// Injectable dispatch seam for the oversized and Las Vegas fallback
  /// solves: when set, they run through `solver_backend->Execute` (e.g. on
  /// a ShardedSolverService) instead of a task on `pool`. Pure dispatch —
  /// the solve, its result, and every deterministic counter are identical
  /// whichever backend runs it.
  runtime::SolveBackend* solver_backend = nullptr;
  /// Routing-key base for backend dispatches (stable per run; the model
  /// solvers use their seed). Each dispatch derives its own key from this
  /// plus its sequence number (runtime::DeriveJobId).
  uint64_t job_id = 0;
  /// Span recorder for engine.run / engine.iteration / engine.violator_scan
  /// / engine.basis_solve spans; null or disabled = no tracing (free on the
  /// hot path). Observability only: spans read timestamps and counters but
  /// never touch solver state, so transcripts and deterministic counters
  /// are identical with tracing on or off.
  runtime::trace::TraceRecorder* trace = nullptr;
  /// How the transports execute their violator scans (the SIMD / fusion
  /// seam of constraint_store.h). Pure execution policy: bitmaps, weights,
  /// transcripts, and deterministic counters are bit-identical for every
  /// setting (docs/engine.md §"SIMD violator scan").
  runtime::ScanStrategy scan_strategy = runtime::ScanStrategy::kAuto;

  /// The scan-execution knobs the transports hand to ConstraintView's
  /// problem-aware entry points.
  ScanOptions scan_options() const { return {pool, scan_strategy}; }
};

/// Computes the Algorithm 1 parameters for problem size n and rate
/// exponent r, honoring the streaming ablation overrides (0 = paper value).
/// The iteration cap is model-specific and stays with the caller.
template <LpTypeProblem P>
RefinementPolicy MakePolicy(const P& problem, size_t n, int r,
                            const EpsNetConfig& net, double eps_override = 0,
                            double weight_rate_override = 0,
                            size_t sample_size_override = 0) {
  const size_t nu = problem.CombinatorialDimension();
  const size_t lambda = problem.VcDimension();
  RefinementPolicy policy;
  policy.eps = eps_override > 0
                   ? eps_override
                   : AlgorithmEpsilon(nu, std::max<size_t>(n, 1), r);
  policy.rate = weight_rate_override > 0
                    ? weight_rate_override
                    : WeightIncreaseRate(std::max<size_t>(n, 1), r);
  policy.sample_size =
      sample_size_override > 0
          ? std::min(sample_size_override, n)
          : EpsNetSampleSize(policy.eps, lambda, net, nu + 1, n);
  return policy;
}

/// Applies the RuntimeOptions dispatch knobs to a policy: the solve
/// backend, the routing-key base (the solver seed), and the optional
/// oversized-threshold override. All model solvers route through this so a
/// new knob lands in every model at once.
inline void ApplyRuntimeOptions(RefinementPolicy& policy,
                                const runtime::RuntimeOptions& runtime,
                                uint64_t seed) {
  policy.solver_backend = runtime.solver_backend;
  policy.job_id = seed;
  if (runtime.oversized_basis_threshold > 0) {
    policy.oversized_basis_threshold = runtime.oversized_basis_threshold;
  }
  policy.trace = runtime.trace;
  policy.scan_strategy = runtime.scan_strategy;
}

/// What one violator scan reports back to the engine. `total_weight` is
/// w(S) under the transport's weight function at scan time.
struct ViolatorScan {
  double total_weight = 0;
  double violator_weight = 0;
  uint64_t violator_count = 0;
};

/// Engine-maintained counters, pointing into the model's stats struct.
struct IterationCounters {
  size_t* iterations = nullptr;
  size_t* successful_iterations = nullptr;
  bool* direct_solve = nullptr;
  /// Optional: total serialized bytes of all eps-net samples drawn.
  size_t* sample_bytes = nullptr;
};

/// Cached pointers to the engine's MetricsRegistry entries (registered on
/// first use; see docs/runtime.md for the schema).
struct EngineMetrics {
  runtime::Counter* iterations;
  runtime::Counter* basis_solves;
  runtime::Counter* oversized_basis_solves;
  runtime::Counter* resample_bytes;
  /// Distribution of per-iteration serialized sample sizes. Byte-valued,
  /// so its bucket counts are deterministic for a fixed seed — the
  /// strict-gateable kind of histogram (docs/runtime.md).
  runtime::Histogram* sample_bytes;
  runtime::Timer* violator_scan_seconds;
  runtime::Timer* basis_solve_seconds;
};
EngineMetrics& GlobalEngineMetrics();

// clang-format off
/// What a protocol model must provide to run under the engine. One
/// NextSample / ScanViolators / EndIteration cycle is one Algorithm 1
/// iteration; GatherAll and Finish serve the fallback and epilogue.
template <typename T, typename P>
concept RefinementTransport =
    LpTypeProblem<P> &&
    requires(T t,
             const BasisResult<typename P::Value, typename P::Constraint>& b,
             BasisResult<typename P::Value, typename P::Constraint> owned,
             bool success) {
  /// Produces the iteration's weighted eps-net sample (applying any
  /// reweighting deferred from the previous success first). Errors abort
  /// the run with the transport's status.
  { t.NextSample() }
      -> std::same_as<Result<std::vector<typename P::Constraint>>>;

  /// Scans the full constraint set against the basis; reports w(S), w(V),
  /// and |V| under the transport's weight function.
  { t.ScanViolators(b) } -> std::same_as<ViolatorScan>;

  /// Closes a non-terminal iteration; `success` is the eps-net test result
  /// (reweight / schedule reweighting on success).
  { t.EndIteration(success, b) };

  /// Cleanup before the terminal (zero-violator) return.
  { t.OnTerminal() };

  /// Ships every constraint for the Las Vegas fallback, with the model's
  /// cost accounting.
  { t.GatherAll() } -> std::same_as<std::vector<typename P::Constraint>>;

  /// Status returned when the cap is hit and fallback is disabled.
  { t.IterationCapStatus() } -> std::same_as<Status>;

  /// Epilogue: flushes stats/metrics and returns the result.
  { t.Finish(std::move(owned)) }
      -> std::same_as<
          Result<BasisResult<typename P::Value, typename P::Constraint>>>;
};
// clang-format on

/// Basis of `sample`, routed through the policy's SolveBackend (or its
/// pool) when the sample is oversized. The solve itself is unchanged
/// (bit-identical result) and the caller still blocks on it — the routing
/// is a dispatch seam (plus the oversized-solve accounting), not
/// intra-solve parallelism. `solve_seq` numbers the dispatch within the run
/// (iteration index; the fallback uses the iteration cap) so a sharded
/// backend spreads a run's solves deterministically.
///
/// Backends that want serialized jobs (WantsSerialized — e.g. a
/// SocketSolveBackend talking to an `lp_served` daemon) get the sample as a
/// wire::SolveRequest payload instead of a closure; the decoded remote
/// result is bit-identical to a local solve (raw double images cross the
/// wire), and any remote failure falls back to the local closure path, so
/// the transcript never depends on where the solve ran.
template <LpTypeProblem P>
BasisResult<typename P::Value, typename P::Constraint> SolveSampleBasis(
    const P& problem, const std::vector<typename P::Constraint>& sample,
    const RefinementPolicy& policy, uint64_t solve_seq = 0) {
  auto& metrics = GlobalEngineMetrics();
  metrics.basis_solves->Increment();
  runtime::ScopedTimer timer(metrics.basis_solve_seconds);
  runtime::trace::TraceSpan span(policy.trace, "engine.basis_solve");
  span.Arg("iteration", solve_seq);
  span.Arg("constraints", sample.size());
  BasisResult<typename P::Value, typename P::Constraint> out;
  auto solve = [&] {
    out = problem.SolveBasis(
        std::span<const typename P::Constraint>(sample.data(), sample.size()));
  };
  const bool oversized =
      sample.size() >= policy.oversized_basis_threshold &&
      (policy.solver_backend != nullptr || policy.pool != nullptr);
  if (oversized) {
    metrics.oversized_basis_solves->Increment();
    runtime::InlinePoolBackend inline_backend(policy.pool);
    runtime::SolveBackend* backend = policy.solver_backend != nullptr
                                         ? policy.solver_backend
                                         : &inline_backend;
    const uint64_t dispatch_id = runtime::DeriveJobId(policy.job_id, solve_seq);
    if constexpr (runtime::wire::WireSolvable<P>) {
      if (backend->WantsSerialized()) {
        // The basis-solve span's identity rides inside the request, so a
        // remote daemon's decode/solve/encode spans stitch under this
        // trace (all-zero — absent on the wire — when tracing is off).
        const runtime::trace::SpanContext ctx = span.context();
        auto request = runtime::wire::EncodeSolveRequestPayload(
            dispatch_id, problem,
            std::span<const typename P::Constraint>(sample.data(),
                                                    sample.size()),
            runtime::wire::TraceContext{ctx.trace_id, ctx.span_id});
        std::vector<uint8_t> response;
        if (backend->ExecuteSerialized(dispatch_id, policy.name, request,
                                       &response)) {
          auto remote = runtime::wire::DecodeSolveResponsePayload(
              problem, response, dispatch_id);
          if (remote.ok()) return std::move(remote).value();
          LPLOW_LOG(kWarning) << policy.name << " remote solve failed ("
                              << remote.status().ToString()
                              << "); solving locally";
        }
      }
    }
    backend->Execute(dispatch_id, policy.name, solve);
  } else {
    solve();
  }
  return out;
}

/// The shared Algorithm 1 outer loop. Returns the terminal basis, the
/// fallback direct solve, or the transport's error/cap status.
template <LpTypeProblem P, typename T>
  requires RefinementTransport<T, P>
Result<BasisResult<typename P::Value, typename P::Constraint>> RunRefinement(
    const P& problem, T& transport, const RefinementPolicy& policy,
    const IterationCounters& counters) {
  auto& metrics = GlobalEngineMetrics();
  runtime::trace::TraceSpan run_span(policy.trace, "engine.run");
  run_span.Arg("job_id", policy.job_id);
  run_span.Arg("max_iterations", policy.max_iterations);

  for (size_t iter = 0; iter < policy.max_iterations; ++iter) {
    ++*counters.iterations;
    metrics.iterations->Increment();
    runtime::trace::TraceSpan iter_span(policy.trace, "engine.iteration");
    iter_span.Arg("iteration", iter);

    // --- weighted eps-net sample (model-transported).
    auto sample = transport.NextSample();
    if (!sample.ok()) return sample.status();
    {
      size_t bytes = 0;
      for (const auto& c : *sample) bytes += problem.ConstraintBytes(c);
      if (counters.sample_bytes != nullptr) *counters.sample_bytes += bytes;
      metrics.resample_bytes->Increment(bytes);
      metrics.sample_bytes->Record(static_cast<double>(bytes));
      iter_span.Arg("bytes", bytes);
    }

    // --- basis of the sample (backend/pool-routed when oversized).
    auto basis = SolveSampleBasis(problem, *sample, policy, iter);

    // --- violator scan (model-transported).
    ViolatorScan scan;
    {
      runtime::ScopedTimer timer(metrics.violator_scan_seconds);
      runtime::trace::TraceSpan scan_span(policy.trace,
                                          "engine.violator_scan");
      scan_span.Arg("iteration", iter);
      scan = transport.ScanViolators(basis);
      scan_span.Arg("violators", scan.violator_count);
    }

    if (scan.violator_count == 0) {
      // Terminal: w(V) = 0, so f(B) = f(S) (Lemma 3.1) — a vacuous eps-net
      // success.
      ++*counters.successful_iterations;
      transport.OnTerminal();
      return transport.Finish(std::move(basis));
    }

    bool success = scan.violator_weight <= policy.eps * scan.total_weight;
    if (success) ++*counters.successful_iterations;
    transport.EndIteration(success, basis);
  }

  if (!policy.fallback_to_direct) return transport.IterationCapStatus();

  // Las Vegas promise: never return a wrong answer. Gather everything
  // (counted by the transport) and solve directly.
  LPLOW_LOG(kWarning) << policy.name << " hit iteration cap; direct fallback";
  auto all = transport.GatherAll();
  *counters.direct_solve = true;
  return transport.Finish(
      SolveSampleBasis(problem, all, policy, policy.max_iterations));
}

}  // namespace engine
}  // namespace lplow

#endif  // LPLOW_ENGINE_REFINEMENT_H_

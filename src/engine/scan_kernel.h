// Portable SIMD violator-scan kernels over a SoaBlock mirror, with runtime
// CPU dispatch and a bit-identical scalar reference.
//
// Determinism contract (docs/engine.md §"SIMD violator scan"): the kernels
// vectorize ACROSS constraints — one lane per constraint, looping over
// dimensions — so each lane's floating-point accumulation order is exactly
// the per-constraint order of the scalar predicate (`problem.Violates`).
// Multiplies and adds are never fused (the kernel translation unit builds
// with -ffp-contract=off), comparisons reproduce the scalar NaN semantics,
// and sqrt is IEEE correctly-rounded on every target — so the violation
// bitmap is bitwise-equal to the scalar reference on every ISA, which is
// what lets the engine_equivalence goldens hold with SIMD forced on.
//
// Dispatch: AVX2 (x86-64) and NEON (aarch64) kernels are compiled alongside
// an always-built scalar reference; the fastest supported variant is picked
// once at startup. LPLOW_FORCE_SCALAR_SCAN=1 disables the vector variants
// (the CI forced-scalar lane), changing nothing but the time per scan.
//
// Problems opt in via the SimdScannable trait (specialized next to each
// problem: LinearProgram / LinearSvm / MinEnclosingBall); everything else
// keeps the predicate-lambda scan paths untouched.

#ifndef LPLOW_ENGINE_SCAN_KERNEL_H_
#define LPLOW_ENGINE_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/engine/soa_block.h"
#include "src/runtime/metrics.h"

namespace lplow {
namespace engine {

/// The predicate shapes the kernels evaluate. Each mirrors one problem's
/// Violates, operation for operation.
enum class ScanOp : uint8_t {
  /// LP halfspace a.x <= b with |b|-scaled tolerance: lane i is violated
  /// iff !(aux0[i] - dot(col, q) >= -(t0 * aux1[i])), where aux0 = b and
  /// aux1 = max(1, |b|). NaN slack counts as violated (matches
  /// Halfspace::Contains returning false on NaN).
  kHalfspace,
  /// SVM margin test: lane i is violated iff dot(col, q) < t0
  /// (t0 = 1 - margin_tol; NaN dot counts as NOT violated, matching the
  /// scalar `<` comparison).
  kDotBelowThreshold,
  /// MEB containment: lane i is violated iff
  /// !(sqrt(sum_d (col_d - q_d)^2) <= t0) (t0 = radius + tol; NaN distance
  /// counts as violated, matching Ball::Contains).
  kDistanceOutside,
  /// L-infinity regression residual: lane i is violated iff
  /// !(fabs(dot(col, q) - aux0[i]) <= t0), where aux0 = y and t0 is the
  /// current max residual plus tolerance. NaN residual counts as violated.
  kAbsResidualAbove,
  /// Annulus shell test: with v = aux0[i] - dot(col, q) (aux0 = |p|^2 and
  /// q = 2*center, so v = |p - c|^2 - |c|^2), lane i is violated iff
  /// !(v <= t0 && v >= t1) — t0/t1 are the outer/inner shifted
  /// squared-radius bounds. NaN v counts as violated.
  kDotOutsideBand,
};

/// A scan predicate distilled to kernel inputs. Two queries with equal
/// bytes decide identically on every lane — that identity is what the
/// fused scan-and-reweight path keys on (constraint_store.h).
struct ScanQuery {
  enum class Mode : uint8_t {
    /// Not expressible as a kernel (dimension mismatch, trait disabled):
    /// callers fall back to the predicate-lambda path.
    kUnsupported,
    /// Nothing violates (e.g. an infeasible LP value is maximal).
    kNoneViolate,
    /// Everything violates (e.g. the SVM f(empty) zero vector, the empty
    /// ball).
    kAllViolate,
    /// Run the kernel.
    kKernel,
  };

  Mode mode = Mode::kUnsupported;
  ScanOp op = ScanOp::kHalfspace;
  /// The query vector: LP optimum point / SVM normal u / MEB center.
  std::vector<double> q;
  /// Op-specific scalar (see ScanOp docs).
  double t0 = 0;
  /// Second op-specific scalar (kDotOutsideBand's lower bound); ops that
  /// need only one threshold leave it 0.
  double t1 = 0;

  /// Bitwise equality of the decision function: same mode, op, t0/t1 bit
  /// patterns, and q byte-for-byte. (Bitwise so ±0 and NaN payloads cannot
  /// alias two different predicates.)
  bool SamePredicate(const ScanQuery& other) const;
};

/// engine.scan.* counters (docs/runtime.md metrics table). simd_blocks and
/// scalar_tail depend on which kernel variant dispatch picked, so they vary
/// with CPU and LPLOW_FORCE_SCALAR_SCAN; the rest are fully deterministic.
struct ScanMetrics {
  runtime::Counter* simd_blocks;      // kSoaBlockWidth-lane groups run vectorized
  runtime::Counter* scalar_tail;      // lanes run by the scalar reference kernel
  runtime::Counter* fused_reweights;  // reweights served from a scan bitmap
  runtime::Counter* soa_rows;         // constraints mirrored into SoA blocks
  runtime::Counter* requests;         // problem-aware scan requests
};
ScanMetrics& GlobalScanMetrics();

/// True when a vector (AVX2/NEON) kernel is compiled in, supported by this
/// CPU, and not disabled via LPLOW_FORCE_SCALAR_SCAN=1. Resolved once.
bool VectorScanActive();

/// "avx2", "neon", or "scalar" — the variant RunScanKernel dispatches to.
const char* ScanKernelName();

/// Evaluates `query` (mode kKernel) over lanes [begin, end) of `block`,
/// writing 0/1 bytes into bitmap[begin..end). `begin` must be a multiple of
/// kSoaBlockWidth; `bitmap` must have room for SoaPaddedSize(end) bytes
/// (vector variants may scribble into the padding past `end`, never past
/// the padded boundary — so block-aligned chunks compose race-free).
/// Tallies vector-width groups / scalar lanes into the out-params when
/// non-null (callers fold them into GlobalScanMetrics()).
void RunScanKernel(const SoaBlock& block, const ScanQuery& query,
                   uint8_t* bitmap, size_t begin, size_t end,
                   uint64_t* vector_blocks, uint64_t* scalar_lanes);

/// Test hook: run exactly the scalar reference (use_vector = false) or
/// exactly the vector variant (returns false when none is available on
/// this build/CPU). Ignores LPLOW_FORCE_SCALAR_SCAN for use_vector = false.
bool RunScanKernelVariant(const SoaBlock& block, const ScanQuery& query,
                          uint8_t* bitmap, size_t begin, size_t end,
                          bool use_vector);

/// Opt-in trait connecting a problem to the kernels. The primary template
/// is disabled; specializations live next to the problem (so they are
/// visible wherever the problem is) and provide:
///
///   static constexpr bool enabled = true;
///   static constexpr size_t kAux;                      // aux column count
///   // Geometry dimension of one constraint (columns of the mirror).
///   static size_t Dim(const P& problem, const Constraint& c);
///   // Fills lane `lane`; false on a shape mismatch (disables the mirror).
///   static bool Mirror(const P& problem, const Constraint& c,
///                      SoaBlock* soa, size_t lane);
///   // Distills (problem config, value) into kernel inputs; mode
///   // kUnsupported when the predicate cannot be expressed.
///   static ScanQuery MakeQuery(const P& problem, const Value& v,
///                              size_t dim);
template <typename P>
struct SimdScannable {
  static constexpr bool enabled = false;
};

}  // namespace engine
}  // namespace lplow

#endif  // LPLOW_ENGINE_SCAN_KERNEL_H_

// Kernel implementations + runtime dispatch for scan_kernel.h.
//
// This translation unit builds with -ffp-contract=off (src/engine/
// CMakeLists.txt): the bit-equality contract between the scalar reference
// and the vector lanes dies the moment a compiler silently fuses one side's
// a*b+c into an fma, so contraction is forbidden here outright.

#include "src/engine/scan_kernel.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "src/util/logging.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define LPLOW_SCAN_HAVE_AVX2 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define LPLOW_SCAN_HAVE_NEON 1
#endif

namespace lplow {
namespace engine {

bool ScanQuery::SamePredicate(const ScanQuery& other) const {
  if (mode != other.mode || op != other.op) return false;
  if (std::memcmp(&t0, &other.t0, sizeof(t0)) != 0) return false;
  if (std::memcmp(&t1, &other.t1, sizeof(t1)) != 0) return false;
  if (q.size() != other.q.size()) return false;
  return q.empty() ||
         std::memcmp(q.data(), other.q.data(), q.size() * sizeof(double)) == 0;
}

ScanMetrics& GlobalScanMetrics() {
  static ScanMetrics metrics = [] {
    auto& registry = runtime::MetricsRegistry::Global();
    return ScanMetrics{
        registry.GetCounter("engine.scan.simd_blocks"),
        registry.GetCounter("engine.scan.scalar_tail"),
        registry.GetCounter("engine.scan.fused_reweights"),
        registry.GetCounter("engine.scan.soa_rows"),
        registry.GetCounter("engine.scan.requests"),
    };
  }();
  return metrics;
}

namespace {

// ------------------------------------------------------------------ scalar
// The normative reference: one lane at a time, dimensions ascending, in
// exactly the operation order of the per-constraint scalar predicates
// (Halfspace::Slack/Contains, SvmPoint Z().Dot, Ball::Contains).

void ScanScalar(const SoaBlock& b, const ScanQuery& query, uint8_t* bitmap,
                size_t begin, size_t end) {
  const size_t dim = b.dim();
  const double* q = query.q.data();
  switch (query.op) {
    case ScanOp::kHalfspace: {
      const double* off = b.AuxColumn(0);
      const double* scale = b.AuxColumn(1);
      for (size_t i = begin; i < end; ++i) {
        double acc = 0;
        for (size_t d = 0; d < dim; ++d) acc += b.Column(d)[i] * q[d];
        const double slack = off[i] - acc;
        const double tol = query.t0 * scale[i];
        // Violated = !(slack >= -tol); NaN slack therefore violates.
        bitmap[i] = slack >= -tol ? 0 : 1;
      }
      break;
    }
    case ScanOp::kDotBelowThreshold: {
      for (size_t i = begin; i < end; ++i) {
        double acc = 0;
        for (size_t d = 0; d < dim; ++d) acc += b.Column(d)[i] * q[d];
        bitmap[i] = acc < query.t0 ? 1 : 0;  // NaN: not violated.
      }
      break;
    }
    case ScanOp::kDistanceOutside: {
      for (size_t i = begin; i < end; ++i) {
        double acc = 0;
        for (size_t d = 0; d < dim; ++d) {
          const double diff = b.Column(d)[i] - q[d];
          acc += diff * diff;
        }
        const double dist = std::sqrt(acc);
        bitmap[i] = dist <= query.t0 ? 0 : 1;  // NaN distance violates.
      }
      break;
    }
    case ScanOp::kAbsResidualAbove: {
      const double* target = b.AuxColumn(0);
      for (size_t i = begin; i < end; ++i) {
        double acc = 0;
        for (size_t d = 0; d < dim; ++d) acc += b.Column(d)[i] * q[d];
        const double resid = acc - target[i];
        // Violated = !(|resid| <= t0); NaN residual therefore violates.
        bitmap[i] = std::fabs(resid) <= query.t0 ? 0 : 1;
      }
      break;
    }
    case ScanOp::kDotOutsideBand: {
      const double* off = b.AuxColumn(0);
      for (size_t i = begin; i < end; ++i) {
        double acc = 0;
        for (size_t d = 0; d < dim; ++d) acc += b.Column(d)[i] * q[d];
        const double v = off[i] - acc;
        // Satisfied = t1 <= v <= t0 (both ordered comparisons, false on
        // NaN), so NaN v violates.
        bitmap[i] = (v <= query.t0 && v >= query.t1) ? 0 : 1;
      }
      break;
    }
  }
}

// ------------------------------------------------------------------- AVX2
// 4 lanes per step. Same per-lane operation order as the scalar reference:
// mul + add (never fma), compare with the ordered predicates so NaN falls
// on the same side, movemask to bytes.

#if LPLOW_SCAN_HAVE_AVX2

__attribute__((target("avx2"))) inline void StoreMask4(uint8_t* bitmap,
                                                       size_t i, int mask) {
  bitmap[i + 0] = static_cast<uint8_t>(mask & 1);
  bitmap[i + 1] = static_cast<uint8_t>((mask >> 1) & 1);
  bitmap[i + 2] = static_cast<uint8_t>((mask >> 2) & 1);
  bitmap[i + 3] = static_cast<uint8_t>((mask >> 3) & 1);
}

__attribute__((target("avx2"))) void ScanAvx2(const SoaBlock& b,
                                              const ScanQuery& query,
                                              uint8_t* bitmap, size_t begin,
                                              size_t end,
                                              uint64_t* vector_blocks) {
  const size_t dim = b.dim();
  const double* q = query.q.data();
  uint64_t blocks = 0;
  switch (query.op) {
    case ScanOp::kHalfspace: {
      const double* off = b.AuxColumn(0);
      const double* scale = b.AuxColumn(1);
      const __m256d t0 = _mm256_set1_pd(query.t0);
      const __m256d signbit = _mm256_set1_pd(-0.0);
      for (size_t i = begin; i < end; i += 4, ++blocks) {
        __m256d acc = _mm256_setzero_pd();
        for (size_t d = 0; d < dim; ++d) {
          const __m256d col = _mm256_loadu_pd(b.Column(d) + i);
          acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_set1_pd(q[d])));
        }
        const __m256d slack = _mm256_sub_pd(_mm256_loadu_pd(off + i), acc);
        const __m256d tol = _mm256_mul_pd(t0, _mm256_loadu_pd(scale + i));
        const __m256d neg_tol = _mm256_xor_pd(tol, signbit);
        // Satisfied = slack >= -tol (ordered: false on NaN); violated is
        // the complement, so NaN slack violates — the scalar semantics.
        const __m256d sat = _mm256_cmp_pd(slack, neg_tol, _CMP_GE_OQ);
        StoreMask4(bitmap, i, ~_mm256_movemask_pd(sat) & 0xF);
      }
      break;
    }
    case ScanOp::kDotBelowThreshold: {
      const __m256d t0 = _mm256_set1_pd(query.t0);
      for (size_t i = begin; i < end; i += 4, ++blocks) {
        __m256d acc = _mm256_setzero_pd();
        for (size_t d = 0; d < dim; ++d) {
          const __m256d col = _mm256_loadu_pd(b.Column(d) + i);
          acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_set1_pd(q[d])));
        }
        // Violated = acc < t0 (ordered: false on NaN) — scalar semantics.
        const __m256d viol = _mm256_cmp_pd(acc, t0, _CMP_LT_OQ);
        StoreMask4(bitmap, i, _mm256_movemask_pd(viol));
      }
      break;
    }
    case ScanOp::kDistanceOutside: {
      const __m256d t0 = _mm256_set1_pd(query.t0);
      for (size_t i = begin; i < end; i += 4, ++blocks) {
        __m256d acc = _mm256_setzero_pd();
        for (size_t d = 0; d < dim; ++d) {
          const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(b.Column(d) + i),
                                             _mm256_set1_pd(q[d]));
          acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
        }
        // _mm256_sqrt_pd is IEEE correctly-rounded: bitwise std::sqrt.
        const __m256d dist = _mm256_sqrt_pd(acc);
        // Contained = dist <= t0 (ordered); violated is the complement, so
        // NaN distance violates — the scalar semantics.
        const __m256d inside = _mm256_cmp_pd(dist, t0, _CMP_LE_OQ);
        StoreMask4(bitmap, i, ~_mm256_movemask_pd(inside) & 0xF);
      }
      break;
    }
    case ScanOp::kAbsResidualAbove: {
      const double* target = b.AuxColumn(0);
      const __m256d t0 = _mm256_set1_pd(query.t0);
      // Clearing the sign bit is bitwise std::fabs (also on NaN payloads).
      const __m256d absmask = _mm256_castsi256_pd(
          _mm256_set1_epi64x(0x7FFFFFFFFFFFFFFFLL));
      for (size_t i = begin; i < end; i += 4, ++blocks) {
        __m256d acc = _mm256_setzero_pd();
        for (size_t d = 0; d < dim; ++d) {
          const __m256d col = _mm256_loadu_pd(b.Column(d) + i);
          acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_set1_pd(q[d])));
        }
        const __m256d resid = _mm256_sub_pd(acc, _mm256_loadu_pd(target + i));
        const __m256d mag = _mm256_and_pd(resid, absmask);
        // OK = |resid| <= t0 (ordered: false on NaN); violated is the
        // complement, so NaN residual violates — the scalar semantics.
        const __m256d ok = _mm256_cmp_pd(mag, t0, _CMP_LE_OQ);
        StoreMask4(bitmap, i, ~_mm256_movemask_pd(ok) & 0xF);
      }
      break;
    }
    case ScanOp::kDotOutsideBand: {
      const double* off = b.AuxColumn(0);
      const __m256d t0 = _mm256_set1_pd(query.t0);
      const __m256d t1 = _mm256_set1_pd(query.t1);
      for (size_t i = begin; i < end; i += 4, ++blocks) {
        __m256d acc = _mm256_setzero_pd();
        for (size_t d = 0; d < dim; ++d) {
          const __m256d col = _mm256_loadu_pd(b.Column(d) + i);
          acc = _mm256_add_pd(acc, _mm256_mul_pd(col, _mm256_set1_pd(q[d])));
        }
        const __m256d v = _mm256_sub_pd(_mm256_loadu_pd(off + i), acc);
        // OK = t1 <= v <= t0 (both ordered: false on NaN); the complement
        // makes NaN v violate — the scalar semantics.
        const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(v, t0, _CMP_LE_OQ),
                                         _mm256_cmp_pd(v, t1, _CMP_GE_OQ));
        StoreMask4(bitmap, i, ~_mm256_movemask_pd(ok) & 0xF);
      }
      break;
    }
  }
  if (vector_blocks != nullptr) *vector_blocks += blocks;
}

bool Avx2Supported() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // LPLOW_SCAN_HAVE_AVX2

// ------------------------------------------------------------------- NEON
// 2 lanes per step; aarch64 baseline, so no runtime feature check. Same
// mul + add discipline (the TU's -ffp-contract=off keeps the compiler from
// fusing the intrinsics), same ordered-compare NaN semantics.

#if LPLOW_SCAN_HAVE_NEON

inline void StoreMask2(uint8_t* bitmap, size_t i, uint64x2_t violated) {
  bitmap[i + 0] = vgetq_lane_u64(violated, 0) != 0 ? 1 : 0;
  bitmap[i + 1] = vgetq_lane_u64(violated, 1) != 0 ? 1 : 0;
}

void ScanNeon(const SoaBlock& b, const ScanQuery& query, uint8_t* bitmap,
              size_t begin, size_t end, uint64_t* vector_blocks) {
  const size_t dim = b.dim();
  const double* q = query.q.data();
  uint64_t blocks = 0;
  switch (query.op) {
    case ScanOp::kHalfspace: {
      const double* off = b.AuxColumn(0);
      const double* scale = b.AuxColumn(1);
      const float64x2_t t0 = vdupq_n_f64(query.t0);
      for (size_t i = begin; i < end; i += 2, ++blocks) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (size_t d = 0; d < dim; ++d) {
          acc = vaddq_f64(acc,
                          vmulq_f64(vld1q_f64(b.Column(d) + i),
                                    vdupq_n_f64(q[d])));
        }
        const float64x2_t slack = vsubq_f64(vld1q_f64(off + i), acc);
        const float64x2_t neg_tol =
            vnegq_f64(vmulq_f64(t0, vld1q_f64(scale + i)));
        // vcgeq is false on NaN; the complement makes NaN slack violate.
        const uint64x2_t sat = vcgeq_f64(slack, neg_tol);
        StoreMask2(bitmap, i,
                   veorq_u64(sat, vdupq_n_u64(~uint64_t{0})));
      }
      break;
    }
    case ScanOp::kDotBelowThreshold: {
      const float64x2_t t0 = vdupq_n_f64(query.t0);
      for (size_t i = begin; i < end; i += 2, ++blocks) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (size_t d = 0; d < dim; ++d) {
          acc = vaddq_f64(acc,
                          vmulq_f64(vld1q_f64(b.Column(d) + i),
                                    vdupq_n_f64(q[d])));
        }
        StoreMask2(bitmap, i, vcltq_f64(acc, t0));  // False on NaN.
      }
      break;
    }
    case ScanOp::kDistanceOutside: {
      const float64x2_t t0 = vdupq_n_f64(query.t0);
      for (size_t i = begin; i < end; i += 2, ++blocks) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (size_t d = 0; d < dim; ++d) {
          const float64x2_t diff =
              vsubq_f64(vld1q_f64(b.Column(d) + i), vdupq_n_f64(q[d]));
          acc = vaddq_f64(acc, vmulq_f64(diff, diff));
        }
        const float64x2_t dist = vsqrtq_f64(acc);  // Correctly rounded.
        const uint64x2_t inside = vcleq_f64(dist, t0);
        StoreMask2(bitmap, i,
                   veorq_u64(inside, vdupq_n_u64(~uint64_t{0})));
      }
      break;
    }
    case ScanOp::kAbsResidualAbove: {
      const double* target = b.AuxColumn(0);
      const float64x2_t t0 = vdupq_n_f64(query.t0);
      for (size_t i = begin; i < end; i += 2, ++blocks) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (size_t d = 0; d < dim; ++d) {
          acc = vaddq_f64(acc,
                          vmulq_f64(vld1q_f64(b.Column(d) + i),
                                    vdupq_n_f64(q[d])));
        }
        const float64x2_t resid = vsubq_f64(acc, vld1q_f64(target + i));
        // vabsq clears the sign bit: bitwise std::fabs. vcleq is false on
        // NaN; the complement makes NaN residual violate.
        const uint64x2_t ok = vcleq_f64(vabsq_f64(resid), t0);
        StoreMask2(bitmap, i,
                   veorq_u64(ok, vdupq_n_u64(~uint64_t{0})));
      }
      break;
    }
    case ScanOp::kDotOutsideBand: {
      const double* off = b.AuxColumn(0);
      const float64x2_t t0 = vdupq_n_f64(query.t0);
      const float64x2_t t1 = vdupq_n_f64(query.t1);
      for (size_t i = begin; i < end; i += 2, ++blocks) {
        float64x2_t acc = vdupq_n_f64(0.0);
        for (size_t d = 0; d < dim; ++d) {
          acc = vaddq_f64(acc,
                          vmulq_f64(vld1q_f64(b.Column(d) + i),
                                    vdupq_n_f64(q[d])));
        }
        const float64x2_t v = vsubq_f64(vld1q_f64(off + i), acc);
        // OK = t1 <= v <= t0; both compares false on NaN, complement makes
        // NaN v violate — the scalar semantics.
        const uint64x2_t ok = vandq_u64(vcleq_f64(v, t0), vcgeq_f64(v, t1));
        StoreMask2(bitmap, i,
                   veorq_u64(ok, vdupq_n_u64(~uint64_t{0})));
      }
      break;
    }
  }
  if (vector_blocks != nullptr) *vector_blocks += blocks;
}

#endif  // LPLOW_SCAN_HAVE_NEON

// --------------------------------------------------------------- dispatch

bool ForcedScalar() {
  static const bool forced = [] {
    const char* env = std::getenv("LPLOW_FORCE_SCALAR_SCAN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return forced;
}

enum class Variant { kScalar, kAvx2, kNeon };

Variant ActiveVariant() {
  static const Variant variant = [] {
    if (ForcedScalar()) return Variant::kScalar;
#if LPLOW_SCAN_HAVE_AVX2
    if (Avx2Supported()) return Variant::kAvx2;
#endif
#if LPLOW_SCAN_HAVE_NEON
    return Variant::kNeon;
#endif
    return Variant::kScalar;
  }();
  return variant;
}

bool RunVector(const SoaBlock& block, const ScanQuery& query, uint8_t* bitmap,
               size_t begin, size_t end, uint64_t* vector_blocks) {
#if LPLOW_SCAN_HAVE_AVX2
  if (Avx2Supported()) {
    ScanAvx2(block, query, bitmap, begin, end, vector_blocks);
    return true;
  }
#endif
#if LPLOW_SCAN_HAVE_NEON
  ScanNeon(block, query, bitmap, begin, end, vector_blocks);
  return true;
#endif
  (void)block;
  (void)query;
  (void)bitmap;
  (void)begin;
  (void)end;
  (void)vector_blocks;
  return false;
}

}  // namespace

bool VectorScanActive() { return ActiveVariant() != Variant::kScalar; }

const char* ScanKernelName() {
  switch (ActiveVariant()) {
    case Variant::kAvx2:
      return "avx2";
    case Variant::kNeon:
      return "neon";
    case Variant::kScalar:
      return "scalar";
  }
  return "scalar";
}

void RunScanKernel(const SoaBlock& block, const ScanQuery& query,
                   uint8_t* bitmap, size_t begin, size_t end,
                   uint64_t* vector_blocks, uint64_t* scalar_lanes) {
  if (end <= begin) return;
  LPLOW_CHECK_EQ(begin % kSoaBlockWidth, 0u);
  LPLOW_CHECK(query.mode == ScanQuery::Mode::kKernel);
  if (VectorScanActive() &&
      RunVector(block, query, bitmap, begin, end, vector_blocks)) {
    return;
  }
  ScanScalar(block, query, bitmap, begin, end);
  if (scalar_lanes != nullptr) *scalar_lanes += end - begin;
}

bool RunScanKernelVariant(const SoaBlock& block, const ScanQuery& query,
                          uint8_t* bitmap, size_t begin, size_t end,
                          bool use_vector) {
  if (end <= begin) return true;
  LPLOW_CHECK_EQ(begin % kSoaBlockWidth, 0u);
  LPLOW_CHECK(query.mode == ScanQuery::Mode::kKernel);
  if (!use_vector) {
    ScanScalar(block, query, bitmap, begin, end);
    return true;
  }
  return RunVector(block, query, bitmap, begin, end, nullptr);
}

}  // namespace engine
}  // namespace lplow

// Padded, column-major (structure-of-arrays) mirror of a constraint set —
// the data layout behind the vectorized violator scan (scan_kernel.h).
//
// The row-major constraint vectors the rest of the engine works on are
// terrible for SIMD: each predicate evaluation chases a Vec's heap pointer
// and strides across unrelated fields. SoaBlock transposes the scan-relevant
// numbers once — column d holds coordinate d of every constraint normal,
// contiguous — so a kernel can evaluate one *lane per constraint*, looping
// over dimensions, with unit-stride loads.
//
// Every column is padded to a multiple of kSoaBlockWidth with zeros so
// vector loads never read past a column and pool-parallel kernels can split
// the lane range on block boundaries without overlapping writes. The width
// is deliberately ISA-independent (wider than any vector register we
// target), so layouts — and therefore any layout-derived accounting — are
// identical on every machine.

#ifndef LPLOW_ENGINE_SOA_BLOCK_H_
#define LPLOW_ENGINE_SOA_BLOCK_H_

#include <cstddef>
#include <vector>

namespace lplow {
namespace engine {

/// Lanes per padded storage block. Pool-chunked kernels split lane ranges
/// only at multiples of this, and columns are padded to it.
inline constexpr size_t kSoaBlockWidth = 8;

/// Rounds up to the next multiple of kSoaBlockWidth.
inline constexpr size_t SoaPaddedSize(size_t n) {
  return (n + kSoaBlockWidth - 1) / kSoaBlockWidth * kSoaBlockWidth;
}

/// One mirrored constraint block: `dim` geometry columns (normal / point
/// coordinates) plus `aux` problem-specific columns (offsets, tolerance
/// scales). Grows lane by lane in step with ConstraintStore::Append.
class SoaBlock {
 public:
  SoaBlock() = default;

  /// Clears and re-shapes the block. Must be called before the first
  /// AppendLane; a block stays shaped until the next Reset.
  void Reset(size_t dim, size_t aux);

  bool shaped() const { return shaped_; }
  size_t size() const { return n_; }
  size_t dim() const { return dim_; }
  size_t aux() const { return aux_; }
  /// Allocated lanes per column (SoaPaddedSize(size()); 0 when empty).
  size_t padded() const { return cols_.empty() ? 0 : cols_[0].size(); }

  const double* Column(size_t d) const { return cols_[d].data(); }
  const double* AuxColumn(size_t j) const { return cols_[dim_ + j].data(); }

  /// Appends one (zero-filled) lane and returns its index; the caller fills
  /// it via Set/SetAux. Extends every column by one padding block when full.
  size_t AppendLane();

  void Set(size_t d, size_t lane, double v) { cols_[d][lane] = v; }
  void SetAux(size_t j, size_t lane, double v) { cols_[dim_ + j][lane] = v; }

 private:
  bool shaped_ = false;
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t aux_ = 0;
  // dim_ + aux_ columns, each padded() doubles long. Separate vectors keep
  // AppendLane O(1) amortized without re-laying-out a monolithic buffer.
  std::vector<std::vector<double>> cols_;
};

}  // namespace engine
}  // namespace lplow

#endif  // LPLOW_ENGINE_SOA_BLOCK_H_

#include "src/engine/refinement.h"

namespace lplow {
namespace engine {

EngineMetrics& GlobalEngineMetrics() {
  static EngineMetrics metrics = [] {
    auto& registry = runtime::MetricsRegistry::Global();
    return EngineMetrics{
        registry.GetCounter("engine.iterations"),
        registry.GetCounter("engine.basis_solves"),
        registry.GetCounter("engine.oversized_basis_solves"),
        registry.GetCounter("engine.resample_bytes"),
        registry.GetHistogram("engine.sample_bytes"),
        registry.GetTimer("engine.violator_scan_seconds"),
        registry.GetTimer("engine.basis_solve_seconds"),
    };
  }();
  return metrics;
}

}  // namespace engine
}  // namespace lplow

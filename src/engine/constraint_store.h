// The weighted constraint storage layer shared by the refinement engine,
// the three model runtimes (coordinator sites, MPC machines, the streaming
// gather paths), and the distributed baselines.
//
// ConstraintView is a non-owning, span-based window over a constraint
// sequence with optional per-item weights: weighted sampling, violator
// scans, and reweighting all run over the spans with zero copies.
// ConstraintStore owns the vectors and hands out views.
//
// Determinism contract: every floating-point accumulation (total weight,
// prefix sums, violator weight) runs in ascending index order — the order
// the pre-engine per-model loops used — and the parallel scan variants keep
// that order by splitting the *predicate evaluation* (pure, order-free)
// across the pool into a bitmap and accumulating serially from the bitmap.
// Results are therefore bit-identical for every thread count, including
// the serial reference path (null pool).

#ifndef LPLOW_ENGINE_CONSTRAINT_STORE_H_
#define LPLOW_ENGINE_CONSTRAINT_STORE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/runtime/thread_pool.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace lplow {
namespace engine {

/// Result of a violator scan: total violating weight and count.
struct ViolatorStats {
  double weight = 0.0;
  uint64_t count = 0;
};

/// Below this many items a parallel scan is all overhead; the pool-aware
/// entry points fall back to the serial path.
inline constexpr size_t kParallelScanMinItems = 4096;

/// Non-owning window over constraints plus (optionally) their weights.
/// An empty weight span means unit weights (the baselines' case).
template <typename C>
class ConstraintView {
 public:
  /// Unweighted view (every item has weight 1).
  explicit ConstraintView(std::span<const C> items) : items_(items) {}

  /// Weighted view; `weights` must have one entry per item and stays
  /// writable (reweighting mutates it in place).
  ConstraintView(std::span<const C> items, std::span<double> weights)
      : items_(items), weights_(weights) {
    LPLOW_CHECK_EQ(items.size(), weights.size());
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::span<const C> items() const { return items_; }
  const C& operator[](size_t i) const { return items_[i]; }
  bool unit_weights() const { return weights_.empty(); }
  double weight(size_t i) const {
    return weights_.empty() ? 1.0 : weights_[i];
  }

  /// Sum of weights in ascending index order (the order is part of the
  /// determinism guarantee: floating-point sums are order-sensitive).
  double TotalWeight() const {
    if (weights_.empty()) return static_cast<double>(items_.size());
    double total = 0;
    for (double w : weights_) total += w;
    return total;
  }

  /// `count` weighted draws with replacement: prefix sums + binary search,
  /// O(n + count log n), consuming exactly `count` uniform draws from `rng`
  /// (zero when the view is empty or its weight is zero — the same draw
  /// discipline as the pre-engine site/machine samplers).
  std::vector<size_t> SampleIndices(size_t count, Rng* rng) const {
    std::vector<size_t> out;
    if (items_.empty()) return out;
    std::vector<double> prefix(items_.size());
    double acc = 0;
    for (size_t i = 0; i < items_.size(); ++i) {
      acc += weight(i);
      prefix[i] = acc;
    }
    if (acc <= 0) return out;
    out.reserve(count);
    for (size_t s = 0; s < count; ++s) {
      double target = rng->UniformDouble() * acc;
      size_t pick = static_cast<size_t>(
          std::lower_bound(prefix.begin(), prefix.end(), target) -
          prefix.begin());
      if (pick >= prefix.size()) pick = prefix.size() - 1;
      out.push_back(pick);
    }
    return out;
  }

  /// Serial violator scan: ascending index order, weight and count of the
  /// items for which `violates(item)` holds.
  template <typename Pred>
  ViolatorStats CountViolators(Pred&& violates) const {
    ViolatorStats st;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (violates(items_[i])) {
        st.weight += weight(i);
        ++st.count;
      }
    }
    return st;
  }

  /// Pool-routed violator scan, bit-identical to the serial one for every
  /// thread count: the (pure) predicate is evaluated across the pool into a
  /// bitmap, then weight/count accumulate serially in ascending order.
  template <typename Pred>
  ViolatorStats CountViolators(runtime::ThreadPool* pool,
                               Pred&& violates) const {
    if (pool == nullptr || items_.size() < kParallelScanMinItems) {
      return CountViolators(violates);
    }
    std::vector<uint8_t> hit(items_.size());
    runtime::ParallelFor(pool, 0, items_.size(),
                         [&](size_t i) { hit[i] = violates(items_[i]) ? 1 : 0; });
    ViolatorStats st;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (hit[i]) {
        st.weight += weight(i);
        ++st.count;
      }
    }
    return st;
  }

  /// Multiplies the weight of every item with `violates(item)` by `rate`,
  /// saturating at `ceiling`. Requires a weighted view (vacuously fine on an
  /// empty one). The default ceiling (infinity) is the classic unbounded
  /// reweighting of the randomized models, whose success-gated updates are
  /// few; the deterministic transport reweights on *every* iteration and
  /// passes a finite ceiling so weights never overflow double (saturated
  /// violators stay the global maximum, which is all top-by-weight selection
  /// needs).
  template <typename Pred>
  void ScaleViolators(Pred&& violates, double rate,
                      double ceiling = std::numeric_limits<double>::infinity()) {
    LPLOW_CHECK_EQ(weights_.size(), items_.size());
    for (size_t i = 0; i < items_.size(); ++i) {
      if (violates(items_[i])) {
        weights_[i] = std::min(weights_[i] * rate, ceiling);
      }
    }
  }

  /// Pool-routed reweighting: each update touches only its own slot, so the
  /// result is exactly the serial one for every thread count.
  template <typename Pred>
  void ScaleViolators(runtime::ThreadPool* pool, Pred&& violates, double rate,
                      double ceiling = std::numeric_limits<double>::infinity()) {
    if (pool == nullptr || items_.size() < kParallelScanMinItems) {
      ScaleViolators(violates, rate, ceiling);
      return;
    }
    LPLOW_CHECK_EQ(weights_.size(), items_.size());
    runtime::ParallelFor(pool, 0, items_.size(), [&](size_t i) {
      if (violates(items_[i])) {
        weights_[i] = std::min(weights_[i] * rate, ceiling);
      }
    });
  }

  /// Copies of all items for which `violates(item)` holds, in index order.
  template <typename Pred>
  std::vector<C> CollectViolators(Pred&& violates) const {
    std::vector<C> out;
    for (const C& c : items_) {
      if (violates(c)) out.push_back(c);
    }
    return out;
  }

 private:
  std::span<const C> items_;
  std::span<double> weights_;
};

/// Exact serialized size of every item in the view — the bit(S) accounting
/// of Theorems 1-3, shared by the models and the baselines.
template <typename P, typename C>
size_t SerializedBytes(const P& problem, ConstraintView<C> view) {
  size_t total = 0;
  for (const C& c : view.items()) total += problem.ConstraintBytes(c);
  return total;
}

/// Owning weighted constraint set: the per-site / per-machine storage of
/// the model runtimes. Weights start at 1 (the Algorithm 1 initial state).
template <typename C>
class ConstraintStore {
 public:
  ConstraintStore() = default;
  explicit ConstraintStore(std::vector<C> items)
      : items_(std::move(items)), weights_(items_.size(), 1.0) {}

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<C>& items() const { return items_; }

  void Append(C item) {
    items_.push_back(std::move(item));
    weights_.push_back(1.0);
  }

  ConstraintView<C> View() {
    return ConstraintView<C>(std::span<const C>(items_),
                             std::span<double>(weights_));
  }

 private:
  std::vector<C> items_;
  std::vector<double> weights_;
};

}  // namespace engine
}  // namespace lplow

#endif  // LPLOW_ENGINE_CONSTRAINT_STORE_H_

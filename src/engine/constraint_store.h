// The weighted constraint storage layer shared by the refinement engine,
// the three model runtimes (coordinator sites, MPC machines, the streaming
// gather paths), and the distributed baselines.
//
// ConstraintView is a non-owning, span-based window over a constraint
// sequence with optional per-item weights: weighted sampling, violator
// scans, and reweighting all run over the spans with zero copies.
// ConstraintStore owns the vectors and hands out views.
//
// Determinism contract: every floating-point accumulation (total weight,
// prefix sums, violator weight) runs in ascending index order — the order
// the pre-engine per-model loops used — and the parallel scan variants keep
// that order by splitting the *predicate evaluation* (pure, order-free)
// across the pool into a bitmap and accumulating serially from the bitmap.
// Results are therefore bit-identical for every thread count, including
// the serial reference path (null pool).
//
// SIMD fast path (docs/engine.md §"SIMD violator scan"): a view carrying a
// ScanWorkspace offers problem-aware entry points — ScanViolators,
// ScaleViolatorsFused, CollectViolators(problem, ...) — that, for problems
// opting in via engine::SimdScannable, evaluate the predicate with the
// vectorized kernels of scan_kernel.h over a lazily maintained SoA mirror.
// The kernels' bitmaps are bitwise-equal to the scalar predicate, and the
// weight/count accumulation stays serial-ascending from the bitmap, so
// every ScanStrategy produces bit-identical results. The workspace also
// fuses scan and reweight: a reweight whose predicate byte-compares equal
// to the last recorded scan query reuses the scan's bitmap instead of
// re-evaluating every constraint.

#ifndef LPLOW_ENGINE_CONSTRAINT_STORE_H_
#define LPLOW_ENGINE_CONSTRAINT_STORE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "src/engine/scan_kernel.h"
#include "src/engine/soa_block.h"
#include "src/runtime/thread_pool.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace lplow {
namespace engine {

/// Result of a violator scan: total violating weight and count.
struct ViolatorStats {
  double weight = 0.0;
  uint64_t count = 0;
};

/// Below this many items a parallel scan is all overhead; the pool-aware
/// entry points fall back to the serial path.
inline constexpr size_t kParallelScanMinItems = 4096;

/// How a problem-aware scan should execute: the pool to fan out on (null =
/// serial) and the ScanStrategy picking the evaluation path.
struct ScanOptions {
  runtime::ThreadPool* pool = nullptr;
  runtime::ScanStrategy strategy = runtime::ScanStrategy::kAuto;
};

/// Reusable per-store scratch: the SoA mirror, the violation-bitmap buffer
/// (with the query it answers, for fusion), and the sampling prefix cache.
/// A workspace is bound to ONE logical constraint sequence that only ever
/// grows (ConstraintStore::Append keeps it honest); the view methods
/// maintain and invalidate it.
struct ScanWorkspace {
  enum class SoaState : uint8_t {
    kUnknown,   // no problem-aware scan has run yet
    kEnabled,   // mirror shaped and tracking the sequence
    kDisabled,  // trait declined (shape mismatch) — predicate path forever
  };

  // SoA mirror of the scan-relevant constraint numbers (lazily extended to
  // cover the sequence on each problem-aware scan).
  SoaState soa_state = SoaState::kUnknown;
  SoaBlock soa;

  // Violation bitmap scratch. When `bitmap_valid`, bitmap[0..bitmap_items)
  // holds the kernel verdicts for `bitmap_query` — the fusion key: a later
  // reweight/collect whose recomputed query SamePredicate-matches reuses it.
  // The generic pool scan reuses the buffer as plain scratch (and clears
  // the valid flag: a lambda's verdicts carry no reusable key).
  std::vector<uint8_t> bitmap;
  bool bitmap_valid = false;
  size_t bitmap_items = 0;
  ScanQuery bitmap_query;

  // SampleIndices prefix-sum cache, rebuilt only after a weight change.
  std::vector<double> prefix;
  bool prefix_valid = false;

  /// New item: the bitmap no longer covers the sequence and the prefix sums
  /// are stale. (The SoA mirror itself needs no touch — it tracks coverage
  /// by lane count and catches up lazily.)
  void InvalidateOnAppend() {
    bitmap_valid = false;
    prefix_valid = false;
  }
  /// Weights changed: prefix sums are stale. The bitmap stays valid — scan
  /// predicates never read weights.
  void InvalidateWeights() { prefix_valid = false; }
};

/// Non-owning window over constraints plus (optionally) their weights.
/// An empty weight span means unit weights (the baselines' case).
template <typename C>
class ConstraintView {
 public:
  /// Unweighted view (every item has weight 1).
  explicit ConstraintView(std::span<const C> items) : items_(items) {}

  /// Unweighted view with a scan workspace (the baselines' SIMD path).
  ConstraintView(std::span<const C> items, ScanWorkspace* ws)
      : items_(items), ws_(ws) {}

  /// Weighted view; `weights` must have one entry per item and stays
  /// writable (reweighting mutates it in place).
  ConstraintView(std::span<const C> items, std::span<double> weights,
                 ScanWorkspace* ws = nullptr)
      : items_(items), weights_(weights), ws_(ws) {
    LPLOW_CHECK_EQ(items.size(), weights.size());
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::span<const C> items() const { return items_; }
  const C& operator[](size_t i) const { return items_[i]; }
  bool unit_weights() const { return weights_.empty(); }
  double weight(size_t i) const {
    return weights_.empty() ? 1.0 : weights_[i];
  }

  /// Sum of weights in ascending index order (the order is part of the
  /// determinism guarantee: floating-point sums are order-sensitive). Served
  /// from the sampling prefix cache when it is current — the cached running
  /// sum is built in the same ascending order, so the value is identical.
  double TotalWeight() const {
    if (ws_ != nullptr && ws_->prefix_valid &&
        ws_->prefix.size() == items_.size() && !items_.empty()) {
      return ws_->prefix.back();
    }
    if (weights_.empty()) return static_cast<double>(items_.size());
    double total = 0;
    for (double w : weights_) total += w;
    return total;
  }

  /// `count` weighted draws with replacement: prefix sums + binary search,
  /// O(n + count log n), consuming exactly `count` uniform draws from `rng`
  /// (zero when the view is empty or its weight is zero — the same draw
  /// discipline as the pre-engine site/machine samplers). With a workspace,
  /// the prefix array is cached across calls and rebuilt only after a
  /// weight change or append (same ascending construction → same bits).
  std::vector<size_t> SampleIndices(size_t count, Rng* rng) const {
    std::vector<size_t> out;
    if (items_.empty()) return out;
    std::vector<double> local;
    std::vector<double>* prefix = &local;
    if (ws_ != nullptr) {
      prefix = &ws_->prefix;
      if (!ws_->prefix_valid || ws_->prefix.size() != items_.size()) {
        BuildPrefix(prefix);
        ws_->prefix_valid = true;
      }
    } else {
      BuildPrefix(prefix);
    }
    const double acc = prefix->back();
    if (acc <= 0) return out;
    out.reserve(count);
    for (size_t s = 0; s < count; ++s) {
      double target = rng->UniformDouble() * acc;
      size_t pick = static_cast<size_t>(
          std::lower_bound(prefix->begin(), prefix->end(), target) -
          prefix->begin());
      if (pick >= prefix->size()) pick = prefix->size() - 1;
      out.push_back(pick);
    }
    return out;
  }

  /// Serial violator scan: ascending index order, weight and count of the
  /// items for which `violates(item)` holds.
  template <typename Pred>
  ViolatorStats CountViolators(Pred&& violates) const {
    ViolatorStats st;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (violates(items_[i])) {
        st.weight += weight(i);
        ++st.count;
      }
    }
    return st;
  }

  /// Pool-routed violator scan, bit-identical to the serial one for every
  /// thread count: the (pure) predicate is evaluated across the pool into a
  /// bitmap, then weight/count accumulate serially in ascending order. With
  /// a workspace the bitmap buffer is reused across calls instead of being
  /// reallocated per scan.
  template <typename Pred>
  ViolatorStats CountViolators(runtime::ThreadPool* pool,
                               Pred&& violates) const {
    if (pool == nullptr || items_.size() < kParallelScanMinItems) {
      return CountViolators(violates);
    }
    std::vector<uint8_t> local;
    std::vector<uint8_t>* hit = &local;
    if (ws_ != nullptr) {
      hit = &ws_->bitmap;
      ws_->bitmap_valid = false;  // lambda verdicts: no fusion key
    }
    hit->resize(items_.size());
    uint8_t* bits = hit->data();
    runtime::ParallelFor(pool, 0, items_.size(), [&](size_t i) {
      bits[i] = violates(items_[i]) ? 1 : 0;
    });
    ViolatorStats st;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (bits[i]) {
        st.weight += weight(i);
        ++st.count;
      }
    }
    return st;
  }

  /// Multiplies the weight of every item with `violates(item)` by `rate`,
  /// saturating at `ceiling`. Requires a weighted view (vacuously fine on an
  /// empty one). The default ceiling (infinity) is the classic unbounded
  /// reweighting of the randomized models, whose success-gated updates are
  /// few; the deterministic transport reweights on *every* iteration and
  /// passes a finite ceiling so weights never overflow double (saturated
  /// violators stay the global maximum, which is all top-by-weight selection
  /// needs).
  template <typename Pred>
  void ScaleViolators(Pred&& violates, double rate,
                      double ceiling = std::numeric_limits<double>::infinity()) {
    LPLOW_CHECK_EQ(weights_.size(), items_.size());
    if (ws_ != nullptr) ws_->InvalidateWeights();
    for (size_t i = 0; i < items_.size(); ++i) {
      if (violates(items_[i])) {
        weights_[i] = std::min(weights_[i] * rate, ceiling);
      }
    }
  }

  /// Pool-routed reweighting: each update touches only its own slot, so the
  /// result is exactly the serial one for every thread count.
  template <typename Pred>
  void ScaleViolators(runtime::ThreadPool* pool, Pred&& violates, double rate,
                      double ceiling = std::numeric_limits<double>::infinity()) {
    if (pool == nullptr || items_.size() < kParallelScanMinItems) {
      ScaleViolators(violates, rate, ceiling);
      return;
    }
    LPLOW_CHECK_EQ(weights_.size(), items_.size());
    if (ws_ != nullptr) ws_->InvalidateWeights();
    runtime::ParallelFor(pool, 0, items_.size(), [&](size_t i) {
      if (violates(items_[i])) {
        weights_[i] = std::min(weights_[i] * rate, ceiling);
      }
    });
  }

  /// Copies of all items for which `violates(item)` holds, in index order.
  template <typename Pred>
  std::vector<C> CollectViolators(Pred&& violates) const {
    std::vector<C> out;
    for (const C& c : items_) {
      if (violates(c)) out.push_back(c);
    }
    return out;
  }

  // ------------------------------------------------------------------------
  // Problem-aware entry points (the SIMD + fusion fast path). All three are
  // drop-in replacements for the predicate overloads with
  // `[&](const C& c) { return problem.Violates(value, c); }`: same results
  // to the bit for every strategy, pool, and ISA. They take the fast path
  // only when the view carries a workspace, the strategy allows kernels,
  // and SimdScannable<P> accepts the problem — otherwise they fall back to
  // the predicate overloads above.
  // ------------------------------------------------------------------------

  /// Violator scan via `problem.Violates(value, ·)`. On the kernel path the
  /// verdict bitmap and its query key are recorded in the workspace, arming
  /// the fused reweight/collect below.
  template <typename P, typename V>
  ViolatorStats ScanViolators(const P& problem, const V& value,
                              const ScanOptions& opts) const {
    GlobalScanMetrics().requests->Increment();
    if (items_.empty()) return {};
    if constexpr (SimdScannable<P>::enabled) {
      if (KernelEligible(opts.strategy) && EnsureMirror(problem)) {
        ScanQuery query =
            SimdScannable<P>::MakeQuery(problem, value, ws_->soa.dim());
        switch (query.mode) {
          case ScanQuery::Mode::kNoneViolate:
            return {};
          case ScanQuery::Mode::kAllViolate: {
            ViolatorStats st;
            st.count = items_.size();
            st.weight = TotalWeight();  // same ascending accumulation
            return st;
          }
          case ScanQuery::Mode::kKernel: {
            FillBitmap(std::move(query), opts);
            ViolatorStats st;
            const uint8_t* bits = ws_->bitmap.data();
            for (size_t i = 0; i < items_.size(); ++i) {
              if (bits[i]) {
                st.weight += weight(i);
                ++st.count;
              }
            }
            return st;
          }
          case ScanQuery::Mode::kUnsupported:
            break;  // fall through to the predicate path
        }
      }
    }
    auto pred = [&](const C& c) { return problem.Violates(value, c); };
    if (opts.strategy == runtime::ScanStrategy::kSerial) {
      return CountViolators(pred);
    }
    return CountViolators(opts.pool, pred);
  }

  /// Reweighting via `problem.Violates(value, ·)`. When the workspace holds
  /// a bitmap recorded for the byte-identical query — the common case: the
  /// engine reweights against exactly the basis it just scanned — the
  /// verdicts are reused and no constraint is re-evaluated
  /// (engine.scan.fused_reweights counts these). Any mismatch (new value,
  /// appended items, different problem config) falls back to a fresh
  /// evaluation; the fusion is an optimization, never an assumption.
  template <typename P, typename V>
  void ScaleViolatorsFused(
      const P& problem, const V& value, double rate, const ScanOptions& opts,
      double ceiling = std::numeric_limits<double>::infinity()) {
    GlobalScanMetrics().requests->Increment();
    if (items_.empty()) return;
    LPLOW_CHECK_EQ(weights_.size(), items_.size());
    if constexpr (SimdScannable<P>::enabled) {
      if (KernelEligible(opts.strategy) && EnsureMirror(problem)) {
        ScanQuery query =
            SimdScannable<P>::MakeQuery(problem, value, ws_->soa.dim());
        switch (query.mode) {
          case ScanQuery::Mode::kNoneViolate:
            return;
          case ScanQuery::Mode::kAllViolate: {
            ws_->InvalidateWeights();
            ScaleAll(rate, ceiling, opts);
            return;
          }
          case ScanQuery::Mode::kKernel: {
            if (BitmapCurrent(query)) {
              GlobalScanMetrics().fused_reweights->Increment();
            } else {
              FillBitmap(std::move(query), opts);
            }
            ws_->InvalidateWeights();
            ScaleFromBitmap(rate, ceiling, opts);
            return;
          }
          case ScanQuery::Mode::kUnsupported:
            break;
        }
      }
    }
    auto pred = [&](const C& c) { return problem.Violates(value, c); };
    if (opts.strategy == runtime::ScanStrategy::kSerial) {
      ScaleViolators(pred, rate, ceiling);
      return;
    }
    ScaleViolators(opts.pool, pred, rate, ceiling);
  }

  /// Violator collection via `problem.Violates(value, ·)`, in index order.
  /// Reuses a current bitmap (or runs the kernel) like the scan above.
  template <typename P, typename V>
  std::vector<C> CollectViolators(const P& problem, const V& value,
                                  const ScanOptions& opts) const {
    GlobalScanMetrics().requests->Increment();
    std::vector<C> out;
    if (items_.empty()) return out;
    if constexpr (SimdScannable<P>::enabled) {
      if (KernelEligible(opts.strategy) && EnsureMirror(problem)) {
        ScanQuery query =
            SimdScannable<P>::MakeQuery(problem, value, ws_->soa.dim());
        switch (query.mode) {
          case ScanQuery::Mode::kNoneViolate:
            return out;
          case ScanQuery::Mode::kAllViolate:
            out.assign(items_.begin(), items_.end());
            return out;
          case ScanQuery::Mode::kKernel: {
            if (!BitmapCurrent(query)) FillBitmap(std::move(query), opts);
            const uint8_t* bits = ws_->bitmap.data();
            for (size_t i = 0; i < items_.size(); ++i) {
              if (bits[i]) out.push_back(items_[i]);
            }
            return out;
          }
          case ScanQuery::Mode::kUnsupported:
            break;
        }
      }
    }
    return CollectViolators(
        [&](const C& c) { return problem.Violates(value, c); });
  }

 private:
  void BuildPrefix(std::vector<double>* prefix) const {
    prefix->resize(items_.size());
    double acc = 0;
    for (size_t i = 0; i < items_.size(); ++i) {
      acc += weight(i);
      (*prefix)[i] = acc;
    }
  }

  bool KernelEligible(runtime::ScanStrategy strategy) const {
    if (ws_ == nullptr) return false;
    switch (strategy) {
      case runtime::ScanStrategy::kAuto:
      case runtime::ScanStrategy::kSimd:
      case runtime::ScanStrategy::kSimdPool:
        return true;
      case runtime::ScanStrategy::kSerial:
      case runtime::ScanStrategy::kPoolBitmap:
        return false;
    }
    return false;
  }

  /// Extends the SoA mirror to cover every item (lazy sync with Append).
  /// False — permanently — if the trait declines any item: heterogeneous
  /// shapes mean the predicate is not expressible as one kernel sweep.
  template <typename P>
  bool EnsureMirror(const P& problem) const {
    using Trait = SimdScannable<P>;
    ScanWorkspace& ws = *ws_;
    if (ws.soa_state == ScanWorkspace::SoaState::kDisabled) return false;
    if (ws.soa_state == ScanWorkspace::SoaState::kUnknown) {
      const size_t dim = Trait::Dim(problem, items_[0]);
      if (dim == 0) {
        ws.soa_state = ScanWorkspace::SoaState::kDisabled;
        return false;
      }
      ws.soa.Reset(dim, Trait::kAux);
      ws.soa_state = ScanWorkspace::SoaState::kEnabled;
    }
    const size_t already = ws.soa.size();
    for (size_t i = already; i < items_.size(); ++i) {
      if (Trait::Dim(problem, items_[i]) != ws.soa.dim()) {
        ws.soa_state = ScanWorkspace::SoaState::kDisabled;
        return false;
      }
      const size_t lane = ws.soa.AppendLane();
      if (!Trait::Mirror(problem, items_[i], &ws.soa, lane)) {
        ws.soa_state = ScanWorkspace::SoaState::kDisabled;
        return false;
      }
    }
    if (items_.size() > already) {
      GlobalScanMetrics().soa_rows->Increment(items_.size() - already);
    }
    return true;
  }

  /// True when the recorded bitmap answers exactly `query` over the current
  /// item count — the fusion test.
  bool BitmapCurrent(const ScanQuery& query) const {
    return ws_->bitmap_valid && ws_->bitmap_items == items_.size() &&
           ws_->bitmap_query.SamePredicate(query);
  }

  /// Runs the kernel over every lane into the workspace bitmap and records
  /// the query key. Pool-chunked on kSoaBlockWidth boundaries when the
  /// strategy + pool + size allow (chunks never write past their own padded
  /// block, so the fan-out is race-free); accumulation stays with callers,
  /// reading the bitmap serially.
  void FillBitmap(ScanQuery query, const ScanOptions& opts) const {
    ScanWorkspace& ws = *ws_;
    const size_t n = items_.size();
    const size_t padded = SoaPaddedSize(n);
    ws.bitmap.resize(padded);
    uint8_t* bits = ws.bitmap.data();
    const bool pooled = opts.pool != nullptr &&
                        opts.strategy != runtime::ScanStrategy::kSimd &&
                        n >= kParallelScanMinItems;
    if (pooled) {
      const size_t blocks = padded / kSoaBlockWidth;
      runtime::ParallelFor(opts.pool, 0, blocks, [&](size_t b) {
        const size_t lo = b * kSoaBlockWidth;
        RunScanKernel(ws.soa, query, bits, lo,
                      std::min(lo + kSoaBlockWidth, n), nullptr, nullptr);
      });
    } else {
      RunScanKernel(ws.soa, query, bits, 0, n, nullptr, nullptr);
    }
    ScanMetrics& metrics = GlobalScanMetrics();
    if (VectorScanActive()) {
      metrics.simd_blocks->Increment(padded / kSoaBlockWidth);
    } else {
      metrics.scalar_tail->Increment(n);
    }
    ws.bitmap_valid = true;
    ws.bitmap_items = n;
    ws.bitmap_query = std::move(query);
  }

  void ScaleAll(double rate, double ceiling, const ScanOptions& opts) {
    double* w = weights_.data();
    auto update = [rate, ceiling, w](size_t i) {
      w[i] = std::min(w[i] * rate, ceiling);
    };
    if (opts.pool != nullptr && items_.size() >= kParallelScanMinItems) {
      runtime::ParallelFor(opts.pool, 0, items_.size(), update);
    } else {
      for (size_t i = 0; i < items_.size(); ++i) update(i);
    }
  }

  void ScaleFromBitmap(double rate, double ceiling, const ScanOptions& opts) {
    const uint8_t* bits = ws_->bitmap.data();
    double* w = weights_.data();
    auto update = [rate, ceiling, w, bits](size_t i) {
      if (bits[i]) w[i] = std::min(w[i] * rate, ceiling);
    };
    if (opts.pool != nullptr && items_.size() >= kParallelScanMinItems) {
      runtime::ParallelFor(opts.pool, 0, items_.size(), update);
    } else {
      for (size_t i = 0; i < items_.size(); ++i) update(i);
    }
  }

  std::span<const C> items_;
  std::span<double> weights_;
  ScanWorkspace* ws_ = nullptr;
};

/// Exact serialized size of every item in the view — the bit(S) accounting
/// of Theorems 1-3, shared by the models and the baselines.
template <typename P, typename C>
size_t SerializedBytes(const P& problem, ConstraintView<C> view) {
  size_t total = 0;
  for (const C& c : view.items()) total += problem.ConstraintBytes(c);
  return total;
}

/// Owning weighted constraint set: the per-site / per-machine storage of
/// the model runtimes. Weights start at 1 (the Algorithm 1 initial state).
/// Owns a ScanWorkspace, so View() hands out SIMD-and-fusion-capable views.
template <typename C>
class ConstraintStore {
 public:
  ConstraintStore() = default;
  explicit ConstraintStore(std::vector<C> items)
      : items_(std::move(items)), weights_(items_.size(), 1.0) {}

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<C>& items() const { return items_; }

  void Append(C item) {
    items_.push_back(std::move(item));
    weights_.push_back(1.0);
    ws_.InvalidateOnAppend();
  }

  ConstraintView<C> View() {
    return ConstraintView<C>(std::span<const C>(items_),
                             std::span<double>(weights_), &ws_);
  }

 private:
  std::vector<C> items_;
  std::vector<double> weights_;
  ScanWorkspace ws_;
};

}  // namespace engine
}  // namespace lplow

#endif  // LPLOW_ENGINE_CONSTRAINT_STORE_H_

#include "src/problems/min_enclosing_ball.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {

MinEnclosingBall::MinEnclosingBall(size_t dim, Config config)
    : dim_(dim), config_(config), solver_(config.solver) {
  LPLOW_CHECK_GE(dim_, 1u);
}

int MinEnclosingBall::CompareValues(const Value& a, const Value& b) const {
  // The empty ball (radius < 0) is the minimal element, which the plain
  // radius comparison already delivers.
  double tol = config_.value_tol *
               std::max(1.0, std::max(a.ball.radius, b.ball.radius));
  if (a.ball.radius < b.ball.radius - tol) return -1;
  if (a.ball.radius > b.ball.radius + tol) return 1;
  return 0;
}

bool MinEnclosingBall::Violates(const Value& value, const Constraint& c) const {
  if (value.ball.empty()) return true;  // Any point violates the empty ball.
  return !value.ball.Contains(c, config_.contain_tol);
}

MinEnclosingBall::Value MinEnclosingBall::SolveValue(
    std::span<const Constraint> constraints) const {
  Value v;
  if (constraints.empty()) return v;
  std::vector<Vec> pts(constraints.begin(), constraints.end());
  v.ball = solver_.Solve(pts);
  return v;
}

BasisResult<MinEnclosingBall::Value, MinEnclosingBall::Constraint>
MinEnclosingBall::SolveBasis(std::span<const Constraint> constraints) const {
  Value value = SolveValue(constraints);
  if (constraints.empty()) return {value, {}};

  // Support points lie on the boundary.
  std::vector<Constraint> support;
  for (const Constraint& p : constraints) {
    double dist = (p - value.ball.center).Norm();
    if (std::fabs(dist - value.ball.radius) <=
        config_.contain_tol * std::max(1.0, value.ball.radius) * 10) {
      bool dup = false;
      for (const Constraint& q : support) {
        if (q.ApproxEquals(p, 0.0)) {
          dup = true;
          break;
        }
      }
      if (!dup) support.push_back(p);
    }
  }
  if (support.empty()) {
    // Degenerate single-point input.
    return {value, {constraints[0]}};
  }
  Value check = SolveValue(std::span<const Constraint>(support));
  if (CompareValues(check, value) != 0) {
    return {value, std::move(support)};
  }
  std::vector<Constraint> basis = GreedyMinimizeBasis(*this, support, value);
  return {value, std::move(basis)};
}

void MinEnclosingBall::SerializeConstraint(const Constraint& c,
                                           BitWriter* w) const {
  w->PutU32(static_cast<uint32_t>(c.dim()));
  for (size_t i = 0; i < c.dim(); ++i) w->PutDouble(c[i]);
}

Result<MinEnclosingBall::Constraint> MinEnclosingBall::DeserializeConstraint(
    BitReader* r) const {
  auto d = r->GetU32();
  if (!d.ok()) return d.status();
  // Reject dimensions the buffer cannot hold before allocating (8 bytes per
  // coordinate): decoding untrusted input must fail cleanly, never OOM.
  if (*d > r->remaining() / 8) {
    return Status::OutOfRange("point dimension exceeds buffer");
  }
  Vec p(*d);
  for (size_t i = 0; i < *d; ++i) {
    auto x = r->GetDouble();
    if (!x.ok()) return x.status();
    p[i] = *x;
  }
  return p;
}

}  // namespace lplow

#include "src/problems/chebyshev_center.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lplow {

ChebyshevCenter::ChebyshevCenter(size_t dim, SolverConfig config)
    : dim_(dim), config_(config), objective_(dim + 1), solver_(config) {
  LPLOW_CHECK_GE(dim_, 1u);
  objective_[dim_] = -1.0;  // max r == min -r.
}

ChebyshevCenter::Constraint ChebyshevCenter::Lift(const Constraint& c) const {
  Vec normal(dim_ + 1);
  for (size_t d = 0; d < dim_; ++d) normal[d] = c.a[d];
  normal[dim_] = RowScale(c);
  return Constraint(std::move(normal), c.b);
}

double ChebyshevCenter::LiftedSlack(const Value& v, const Constraint& c) const {
  // Kernel order (ScanOp::kHalfspace over the lifted mirror): dot across
  // the d normal columns ascending, then the ||a|| column, then b - acc.
  double acc = 0;
  for (size_t d = 0; d < dim_; ++d) acc += c.a[d] * v.center[d];
  acc += RowScale(c) * v.radius;
  return c.b - acc;
}

ChebyshevCenter::Value ChebyshevCenter::ValueFromSolution(
    const LpSolution& s) const {
  Value v;
  if (!s.optimal()) {
    v.feasible = false;
    return v;
  }
  Vec center(dim_);
  for (size_t d = 0; d < dim_; ++d) center[d] = s.point[d];
  v.center = std::move(center);
  v.radius = s.point[dim_];
  return v;
}

int ChebyshevCenter::CompareValues(const Value& a, const Value& b) const {
  if (!a.feasible || !b.feasible) {
    if (a.feasible == b.feasible) return 0;
    return a.feasible ? -1 : 1;  // Infeasible is the maximal element.
  }
  // Larger radius = smaller f (adding halfspaces only shrinks the ball).
  double tol = config_.compare_tol *
               std::max({1.0, std::fabs(a.radius), std::fabs(b.radius)});
  if (a.radius > b.radius + tol) return -1;
  if (a.radius < b.radius - tol) return 1;
  double lex_tol = config_.compare_tol *
                   std::max({1.0, a.center.InfNorm(), b.center.InfNorm()});
  return a.center.LexCompare(b.center, lex_tol);
}

bool ChebyshevCenter::Violates(const Value& value, const Constraint& c) const {
  if (!value.feasible) return false;
  const double slack = LiftedSlack(value, c);
  const double tol =
      config_.violation_tol * std::max(1.0, std::fabs(c.b));
  // Violated = !(slack >= -tol), so NaN slack violates — the kernel
  // semantics (scan_kernel.h, ScanOp::kHalfspace).
  return !(slack >= -tol);
}

ChebyshevCenter::Value ChebyshevCenter::SolveValue(
    std::span<const Constraint> constraints) const {
  std::vector<Constraint> lifted;
  lifted.reserve(constraints.size());
  for (const Constraint& c : constraints) lifted.push_back(Lift(c));
  return ValueFromSolution(solver_.Solve(lifted, objective_));
}

BasisResult<ChebyshevCenter::Value, ChebyshevCenter::Constraint>
ChebyshevCenter::RepairLoop(std::vector<Constraint> t,
                            std::span<const Constraint> constraints) const {
  // Each appended constraint strictly increases f(T); the cap is a
  // numerical-safety backstop (same structure as LinearProgram::RepairLoop).
  const size_t cap = constraints.size() + 2 * dim_ + 6;
  for (size_t step = 0; step <= cap; ++step) {
    Value value = SolveValue(std::span<const Constraint>(t));
    if (!value.feasible) {
      // Prune T to a small infeasible core.
      size_t i = 0;
      while (i < t.size()) {
        std::vector<Constraint> without;
        without.reserve(t.size() - 1);
        for (size_t j = 0; j < t.size(); ++j) {
          if (j != i) without.push_back(t[j]);
        }
        if (!SolveValue(std::span<const Constraint>(without)).feasible) {
          t = std::move(without);
        } else {
          ++i;
        }
      }
      return {value, std::move(t)};
    }
    double worst = -config_.violation_tol;
    size_t worst_idx = constraints.size();
    for (size_t i = 0; i < constraints.size(); ++i) {
      double slack = LiftedSlack(value, constraints[i]);
      double scale = std::max(1.0, std::fabs(constraints[i].b));
      if (slack / scale < worst) {
        worst = slack / scale;
        worst_idx = i;
      }
    }
    if (worst_idx == constraints.size()) {
      std::vector<Constraint> tight;
      for (const Constraint& h : t) {
        if (std::fabs(LiftedSlack(value, h)) <=
            config_.tight_tol * std::max(1.0, std::fabs(h.b))) {
          tight.push_back(h);
        }
      }
      if (tight.empty()) return {value, {}};
      Value check = SolveValue(std::span<const Constraint>(tight));
      if (CompareValues(check, value) != 0) {
        return {value, std::move(t)};
      }
      std::vector<Constraint> basis = GreedyMinimizeBasis(*this, tight, value);
      return {value, std::move(basis)};
    }
    t.push_back(constraints[worst_idx]);
  }
  LPLOW_LOG(kWarning) << "ChebyshevCenter::RepairLoop cap reached";
  return {SolveValue(std::span<const Constraint>(t)), std::move(t)};
}

BasisResult<ChebyshevCenter::Value, ChebyshevCenter::Constraint>
ChebyshevCenter::SolveBasis(std::span<const Constraint> constraints) const {
  Value value = SolveValue(constraints);
  if (constraints.empty()) return {value, {}};
  if (!value.feasible) return RepairLoop({}, constraints);

  // Tight lifted constraints at the optimum (dedup exact repeats so the
  // greedy prune stays cheap on with-replacement samples).
  std::vector<Constraint> tight;
  for (const Constraint& h : constraints) {
    if (std::fabs(LiftedSlack(value, h)) <=
        config_.tight_tol * std::max(1.0, std::fabs(h.b))) {
      bool dup = false;
      for (const Constraint& g : tight) {
        if (g.b == h.b && g.a.ApproxEquals(h.a, 0.0)) {
          dup = true;
          break;
        }
      }
      if (!dup) tight.push_back(h);
    }
  }
  if (tight.empty()) {
    // Ball determined by the solver box alone.
    return {value, {}};
  }
  Value check = SolveValue(std::span<const Constraint>(tight));
  if (CompareValues(check, value) != 0) {
    // Degenerate/numerically drifted: rebuild by incremental repair.
    return RepairLoop({}, constraints);
  }
  std::vector<Constraint> basis = GreedyMinimizeBasis(*this, tight, value);
  return {value, std::move(basis)};
}

}  // namespace lplow

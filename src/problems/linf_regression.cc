#include "src/problems/linf_regression.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lplow {

LinfRegression::LinfRegression(size_t dim, SolverConfig config)
    : dim_(dim), config_(config), objective_(dim + 1), solver_(config) {
  LPLOW_CHECK_GE(dim_, 1u);
  objective_[dim_] = 1.0;  // Minimize t.
}

double LinfRegression::Residual(const Value& v, const Constraint& c) const {
  // Kernel order (ScanOp::kAbsResidualAbove): dot across the feature
  // columns ascending, then subtract the target.
  double acc = 0;
  for (size_t d = 0; d < dim_; ++d) acc += c.x[d] * v.w[d];
  return acc - c.y;
}

int LinfRegression::CompareValues(const Value& a, const Value& b) const {
  if (a.empty || b.empty) {
    if (a.empty == b.empty) return 0;
    return a.empty ? -1 : 1;  // Empty is the minimal element.
  }
  if (!a.feasible || !b.feasible) {
    if (a.feasible == b.feasible) return 0;
    return a.feasible ? -1 : 1;  // Infeasible is the maximal element.
  }
  double tol =
      config_.compare_tol * std::max({1.0, std::fabs(a.t), std::fabs(b.t)});
  if (a.t < b.t - tol) return -1;
  if (a.t > b.t + tol) return 1;
  double lex_tol =
      config_.compare_tol * std::max({1.0, a.w.InfNorm(), b.w.InfNorm()});
  return a.w.LexCompare(b.w, lex_tol);
}

bool LinfRegression::Violates(const Value& value, const Constraint& c) const {
  if (!value.feasible) return false;
  if (value.empty) return true;  // Any sample violates f(empty).
  // Violated = !(|resid| <= t0), so NaN residual violates — the kernel
  // semantics (scan_kernel.h, ScanOp::kAbsResidualAbove).
  return !(std::fabs(Residual(value, c)) <= ViolationBound(value));
}

LinfRegression::Value LinfRegression::SolveValue(
    std::span<const Constraint> constraints) const {
  Value v;
  if (constraints.empty()) return v;
  v.empty = false;
  // Lifted LP over z = (w, t): each sample contributes
  //   w.x - t <= y   and   -w.x - t <= -y.
  std::vector<Halfspace> lifted;
  lifted.reserve(2 * constraints.size());
  for (const Constraint& c : constraints) {
    Vec up(dim_ + 1);
    Vec down(dim_ + 1);
    for (size_t d = 0; d < dim_; ++d) {
      up[d] = c.x[d];
      down[d] = -c.x[d];
    }
    up[dim_] = -1.0;
    down[dim_] = -1.0;
    lifted.emplace_back(std::move(up), c.y);
    lifted.emplace_back(std::move(down), -c.y);
  }
  LpSolution sol = solver_.Solve(lifted, objective_);
  if (!sol.optimal()) {
    v.feasible = false;
    return v;
  }
  Vec w(dim_);
  for (size_t d = 0; d < dim_; ++d) w[d] = sol.point[d];
  v.w = std::move(w);
  v.t = sol.point[dim_];
  return v;
}

BasisResult<LinfRegression::Value, LinfRegression::Constraint>
LinfRegression::SolveBasis(std::span<const Constraint> constraints) const {
  Value value = SolveValue(constraints);
  if (constraints.empty()) return {value, {}};
  if (!value.feasible) {
    // Pathological (a target beyond the solver box): prune to a small
    // infeasible core.
    std::vector<Constraint> t(constraints.begin(), constraints.end());
    size_t i = 0;
    while (i < t.size()) {
      std::vector<Constraint> without;
      without.reserve(t.size() - 1);
      for (size_t j = 0; j < t.size(); ++j) {
        if (j != i) without.push_back(t[j]);
      }
      if (!SolveValue(std::span<const Constraint>(without)).feasible) {
        t = std::move(without);
      } else {
        ++i;
      }
    }
    return {value, std::move(t)};
  }

  // Support samples: residual magnitude within tight_tol of the max.
  std::vector<Constraint> support;
  for (const Constraint& c : constraints) {
    if (std::fabs(Residual(value, c)) >=
        value.t - config_.tight_tol * std::max(1.0, value.t)) {
      bool dup = false;
      for (const Constraint& s : support) {
        if (s.y == c.y && s.x.ApproxEquals(c.x, 0.0)) {
          dup = true;
          break;
        }
      }
      if (!dup) support.push_back(c);
    }
  }
  if (support.empty()) {
    // Unreachable for nonempty input (the max is attained); keep a valid
    // basis anyway.
    return {value, {constraints[0]}};
  }
  Value check = SolveValue(std::span<const Constraint>(support));
  if (CompareValues(check, value) != 0) {
    return {value, std::move(support)};
  }
  std::vector<Constraint> basis = GreedyMinimizeBasis(*this, support, value);
  return {value, std::move(basis)};
}

void LinfRegression::SerializeConstraint(const Constraint& c,
                                         BitWriter* w) const {
  w->PutU32(static_cast<uint32_t>(c.x.dim()));
  for (size_t i = 0; i < c.x.dim(); ++i) w->PutDouble(c.x[i]);
  w->PutDouble(c.y);
}

Result<LinfRegression::Constraint> LinfRegression::DeserializeConstraint(
    BitReader* r) const {
  auto d = r->GetU32();
  if (!d.ok()) return d.status();
  // Reject dimensions the buffer cannot hold before allocating: decoding
  // untrusted input must fail cleanly, never OOM.
  if (*d > r->remaining() / 8) {
    return Status::OutOfRange("sample dimension exceeds buffer");
  }
  RegressionPoint p;
  p.x = Vec(*d);
  for (size_t i = 0; i < *d; ++i) {
    auto x = r->GetDouble();
    if (!x.ok()) return x.status();
    p.x[i] = *x;
  }
  auto y = r->GetDouble();
  if (!y.ok()) return y.status();
  p.y = *y;
  return p;
}

}  // namespace lplow

// L-infinity (Chebyshev / least-absolute-deviation) regression as an
// LP-type problem:
//
//   min_w max_j | w.x_j - y_j |.
//
// f(A) is the minimal worst-case residual over the sample subset A (with
// the lexicographically-smallest witness w), so adding samples only raises
// the max — Property (P1). The problem is a linear program in the lifted
// variable z = (w, t) in R^{d+1} (two halfspaces per sample), so
// nu <= d + 2 and lambda <= d + 2. An intercept is modeled by appending a
// constant-1 feature.

#ifndef LPLOW_PROBLEMS_LINF_REGRESSION_H_
#define LPLOW_PROBLEMS_LINF_REGRESSION_H_

#include <cmath>
#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/scan_kernel.h"
#include "src/geometry/vec.h"
#include "src/solvers/lex_lp.h"
#include "src/solvers/lp_types.h"

namespace lplow {

/// One regression sample: fit w with w.x ~= y.
struct RegressionPoint {
  Vec x;       // d-dimensional features.
  double y = 0;  // Target.
};

class LinfRegression {
 public:
  using Constraint = RegressionPoint;

  /// The empty-set value (empty = true) is the minimal element: every
  /// sample violates it, mirroring the MEB empty ball. Infeasible can only
  /// arise when a target overflows the solver box — it is the maximal
  /// element, violated by nothing.
  struct Value {
    bool empty = true;
    bool feasible = true;
    Vec w;         // Valid iff !empty && feasible.
    double t = 0;  // max_j |w.x_j - y_j| over the defining set.
  };

  explicit LinfRegression(size_t dim, SolverConfig config = {});

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;
  Value SolveValue(std::span<const Constraint> constraints) const;

  bool Violates(const Value& value, const Constraint& c) const;

  /// Order: empty minimal, infeasible maximal, else (t, lex w).
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 2; }
  size_t VcDimension() const { return dim_ + 2; }

  size_t ConstraintBytes(const Constraint& c) const {
    return 4 + 8 * c.x.dim() + 8;
  }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const;
  Result<Constraint> DeserializeConstraint(BitReader* r) const;

  size_t dim() const { return dim_; }
  const SolverConfig& solver_config() const { return config_; }

  /// The violation threshold t0 = t + violation_tol, shared by Violates and
  /// the SIMD query so both compare against the same bit pattern.
  double ViolationBound(const Value& v) const {
    return v.t + config_.violation_tol;
  }

 private:
  double Residual(const Value& v, const Constraint& c) const;

  size_t dim_;
  SolverConfig config_;
  Vec objective_;  // Minimize t over z = (w, t).
  LexLpSolver solver_;
};

static_assert(LpTypeProblem<LinfRegression>);

namespace engine {

/// SIMD violator scan for L-infinity regression: lane i mirrors the sample
/// features (columns = x, aux0 = y), and the kAbsResidualAbove kernel
/// reproduces !(|w.x - y| <= t + violation_tol) — NaN residual violates.
template <>
struct SimdScannable<LinfRegression> {
  static constexpr bool enabled = true;
  static constexpr size_t kAux = 1;

  static size_t Dim(const LinfRegression&, const RegressionPoint& c) {
    return c.x.dim();
  }

  static bool Mirror(const LinfRegression&, const RegressionPoint& c,
                     SoaBlock* soa, size_t lane) {
    for (size_t d = 0; d < c.x.dim(); ++d) soa->Set(d, lane, c.x[d]);
    soa->SetAux(0, lane, c.y);
    return true;
  }

  static ScanQuery MakeQuery(const LinfRegression& problem,
                             const LinfRegression::Value& value, size_t dim) {
    ScanQuery q;
    q.op = ScanOp::kAbsResidualAbove;
    if (!value.feasible) {
      q.mode = ScanQuery::Mode::kNoneViolate;  // Infeasible is maximal.
      return q;
    }
    if (value.empty) {
      q.mode = ScanQuery::Mode::kAllViolate;  // f(empty): minimal element.
      return q;
    }
    if (value.w.dim() != dim) return q;  // kUnsupported
    q.mode = ScanQuery::Mode::kKernel;
    q.q = value.w.data();
    q.t0 = problem.ViolationBound(value);
    return q;
  }
};

}  // namespace engine

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_LINF_REGRESSION_H_

#include "src/problems/enclosing_annulus.h"

#include <algorithm>
#include <cmath>

#include "src/geometry/halfspace.h"
#include "src/util/logging.h"

namespace lplow {

EnclosingAnnulus::EnclosingAnnulus(size_t dim, SolverConfig config)
    : dim_(dim), config_(config), objective_(dim + 2), solver_(config) {
  LPLOW_CHECK_GE(dim_, 1u);
  objective_[dim_] = 1.0;       // u ...
  objective_[dim_ + 1] = -1.0;  // ... minus l.
}

double EnclosingAnnulus::ShellValue(const Value& v, const Constraint& c) const {
  // Kernel order (ScanOp::kDotOutsideBand): dot against q = 2*center across
  // coordinates ascending, then aux0 - acc.
  double acc = 0;
  for (size_t d = 0; d < dim_; ++d) acc += c[d] * (2.0 * v.center[d]);
  return PointNormSq(c) - acc;
}

int EnclosingAnnulus::CompareValues(const Value& a, const Value& b) const {
  if (a.empty || b.empty) {
    if (a.empty == b.empty) return 0;
    return a.empty ? -1 : 1;  // Empty is the minimal element.
  }
  if (!a.feasible || !b.feasible) {
    if (a.feasible == b.feasible) return 0;
    return a.feasible ? -1 : 1;  // Infeasible is the maximal element.
  }
  const double aw = a.width();
  const double bw = b.width();
  double tol =
      config_.compare_tol * std::max({1.0, std::fabs(aw), std::fabs(bw)});
  if (aw < bw - tol) return -1;
  if (aw > bw + tol) return 1;
  double lex_tol = config_.compare_tol *
                   std::max({1.0, a.center.InfNorm(), b.center.InfNorm()});
  int c = a.center.LexCompare(b.center, lex_tol);
  if (c != 0) return c;
  double u_tol =
      config_.compare_tol * std::max({1.0, std::fabs(a.u), std::fabs(b.u)});
  if (a.u < b.u - u_tol) return -1;
  if (a.u > b.u + u_tol) return 1;
  return 0;
}

bool EnclosingAnnulus::Violates(const Value& value, const Constraint& c) const {
  if (!value.feasible) return false;
  if (value.empty) return true;  // Any point violates f(empty).
  const double s = ShellValue(value, c);
  // Violated = !(l - tol <= s <= u + tol), so NaN s violates — the kernel
  // semantics (scan_kernel.h, ScanOp::kDotOutsideBand).
  return !(s <= OuterBound(value) && s >= InnerBound(value));
}

EnclosingAnnulus::Value EnclosingAnnulus::SolveValue(
    std::span<const Constraint> constraints) const {
  Value v;
  if (constraints.empty()) return v;
  v.empty = false;
  // Lifted LP over z = (c, u, l): each point contributes the outer bound
  // -2p.c - u <= -||p||^2 and the inner bound 2p.c + l <= ||p||^2.
  std::vector<Halfspace> lifted;
  lifted.reserve(2 * constraints.size());
  for (const Constraint& p : constraints) {
    const double nsq = PointNormSq(p);
    Vec outer(dim_ + 2);
    Vec inner(dim_ + 2);
    for (size_t d = 0; d < dim_; ++d) {
      outer[d] = -2.0 * p[d];
      inner[d] = 2.0 * p[d];
    }
    outer[dim_] = -1.0;
    inner[dim_ + 1] = 1.0;
    lifted.emplace_back(std::move(outer), -nsq);
    lifted.emplace_back(std::move(inner), nsq);
  }
  LpSolution sol = solver_.Solve(lifted, objective_);
  if (!sol.optimal()) {
    v.feasible = false;
    return v;
  }
  Vec center(dim_);
  for (size_t d = 0; d < dim_; ++d) center[d] = sol.point[d];
  v.center = std::move(center);
  v.u = sol.point[dim_];
  v.l = sol.point[dim_ + 1];
  return v;
}

BasisResult<EnclosingAnnulus::Value, EnclosingAnnulus::Constraint>
EnclosingAnnulus::SolveBasis(std::span<const Constraint> constraints) const {
  Value value = SolveValue(constraints);
  if (constraints.empty()) return {value, {}};
  if (!value.feasible) {
    // Pathological (points beyond the solver box): prune to a small core.
    std::vector<Constraint> t(constraints.begin(), constraints.end());
    size_t i = 0;
    while (i < t.size()) {
      std::vector<Constraint> without;
      without.reserve(t.size() - 1);
      for (size_t j = 0; j < t.size(); ++j) {
        if (j != i) without.push_back(t[j]);
      }
      if (!SolveValue(std::span<const Constraint>(without)).feasible) {
        t = std::move(without);
      } else {
        ++i;
      }
    }
    return {value, std::move(t)};
  }

  // Support points: shell value within tight_tol of either bound.
  const double scale =
      std::max({1.0, std::fabs(value.u), std::fabs(value.l)});
  std::vector<Constraint> support;
  for (const Constraint& p : constraints) {
    const double s = ShellValue(value, p);
    if (s >= value.u - config_.tight_tol * scale ||
        s <= value.l + config_.tight_tol * scale) {
      bool dup = false;
      for (const Constraint& q : support) {
        if (q.ApproxEquals(p, 0.0)) {
          dup = true;
          break;
        }
      }
      if (!dup) support.push_back(p);
    }
  }
  if (support.empty()) {
    // Unreachable for nonempty input (both bounds are attained); keep a
    // valid basis anyway.
    return {value, {constraints[0]}};
  }
  Value check = SolveValue(std::span<const Constraint>(support));
  if (CompareValues(check, value) != 0) {
    return {value, std::move(support)};
  }
  std::vector<Constraint> basis = GreedyMinimizeBasis(*this, support, value);
  return {value, std::move(basis)};
}

void EnclosingAnnulus::SerializeConstraint(const Constraint& c,
                                           BitWriter* w) const {
  w->PutU32(static_cast<uint32_t>(c.dim()));
  for (size_t i = 0; i < c.dim(); ++i) w->PutDouble(c[i]);
}

Result<EnclosingAnnulus::Constraint> EnclosingAnnulus::DeserializeConstraint(
    BitReader* r) const {
  auto d = r->GetU32();
  if (!d.ok()) return d.status();
  // Reject dimensions the buffer cannot hold before allocating: decoding
  // untrusted input must fail cleanly, never OOM.
  if (*d > r->remaining() / 8) {
    return Status::OutOfRange("point dimension exceeds buffer");
  }
  Vec p(*d);
  for (size_t i = 0; i < *d; ++i) {
    auto x = r->GetDouble();
    if (!x.ok()) return x.status();
    p[i] = *x;
  }
  return p;
}

}  // namespace lplow

#include "src/problems/linear_svm.h"

#include <cmath>

#include "src/util/logging.h"

namespace lplow {

LinearSvm::LinearSvm(size_t dim, Config config)
    : dim_(dim), config_(config), solver_(config.solver) {
  LPLOW_CHECK_GE(dim_, 1u);
}

int LinearSvm::CompareValues(const Value& a, const Value& b) const {
  if (!a.separable || !b.separable) {
    if (a.separable == b.separable) return 0;
    return a.separable ? -1 : 1;
  }
  double tol =
      config_.value_tol * std::max(1.0, std::max(a.norm_squared,
                                                 b.norm_squared));
  if (a.norm_squared < b.norm_squared - tol) return -1;
  if (a.norm_squared > b.norm_squared + tol) return 1;
  return 0;
}

bool LinearSvm::Violates(const Value& value, const Constraint& c) const {
  if (!value.separable) return false;
  if (value.u.dim() == 0) return true;  // f(empty): u = 0 violates everything.
  return c.Z().Dot(value.u) < 1.0 - config_.margin_tol;
}

LinearSvm::Value LinearSvm::SolveValue(
    std::span<const Constraint> constraints) const {
  Value v;
  if (constraints.empty()) return v;  // separable, u absent, norm 0.
  std::vector<Constraint> pts(constraints.begin(), constraints.end());
  SvmSolution sol = pts.size() <= 12 ? solver_.SolveExactSmall(pts)
                                     : solver_.Solve(pts);
  if (!sol.separable) {
    v.separable = false;
    return v;
  }
  v.separable = true;
  v.norm_squared = sol.norm_squared;
  v.u = sol.u;
  return v;
}

BasisResult<LinearSvm::Value, LinearSvm::Constraint> LinearSvm::SolveBasis(
    std::span<const Constraint> constraints) const {
  if (constraints.empty()) return {Value{}, {}};
  std::vector<Constraint> pts(constraints.begin(), constraints.end());
  SvmSolution sol;
  if (pts.size() <= 12) {
    sol = solver_.SolveExactSmall(pts);
  } else {
    sol = solver_.Solve(pts);
  }

  if (!sol.separable) {
    // Infeasible (non-separable) input: grow a small witness set whose
    // sub-SVM is already non-separable, mirroring LinearProgram's repair.
    std::vector<Constraint> t;
    for (size_t step = 0; step <= pts.size(); ++step) {
      Value tv = SolveValue(std::span<const Constraint>(t));
      if (!tv.separable) break;
      // Most-violated constraint w.r.t. the current sub-solution.
      double worst = 1.0;  // Margins below 1 violate.
      size_t worst_idx = pts.size();
      for (size_t i = 0; i < pts.size(); ++i) {
        double margin = tv.u.dim() == 0 ? 0.0 : pts[i].Z().Dot(tv.u);
        if (margin < worst) {
          worst = margin;
          worst_idx = i;
        }
      }
      if (worst_idx == pts.size()) break;  // Nothing violates (shouldn't).
      t.push_back(pts[worst_idx]);
    }
    Value v;
    v.separable = false;
    // Prune the witness set (small) to a minimal non-separable core.
    size_t i = 0;
    while (i < t.size()) {
      std::vector<Constraint> without;
      for (size_t j = 0; j < t.size(); ++j) {
        if (j != i) without.push_back(t[j]);
      }
      if (!SolveValue(std::span<const Constraint>(without)).separable) {
        t = std::move(without);
      } else {
        ++i;
      }
    }
    return {v, std::move(t)};
  }

  Value value;
  value.separable = true;
  value.norm_squared = sol.norm_squared;
  value.u = sol.u;

  // Support vectors: margins equal to 1 within tolerance.
  std::vector<Constraint> support;
  for (const Constraint& p : pts) {
    double margin = p.Z().Dot(sol.u);
    if (margin <= 1.0 + 10 * config_.margin_tol) {
      bool dup = false;
      for (const Constraint& q : support) {
        if (q.label == p.label && q.x.ApproxEquals(p.x, 0.0)) {
          dup = true;
          break;
        }
      }
      if (!dup) support.push_back(p);
    }
  }
  if (support.empty()) return {value, {}};
  Value check = SolveValue(std::span<const Constraint>(support));
  if (CompareValues(check, value) != 0) {
    // Numerical drift: fall back to the full (deduplicated) support set plus
    // everything — keep the sampled set as the basis, correctness of the
    // meta-algorithm only needs Violates soundness.
    return {value, std::move(support)};
  }
  std::vector<Constraint> basis = GreedyMinimizeBasis(*this, support, value);
  return {value, std::move(basis)};
}

void LinearSvm::SerializeConstraint(const Constraint& c, BitWriter* w) const {
  w->PutU32(static_cast<uint32_t>(c.x.dim()));
  for (size_t i = 0; i < c.x.dim(); ++i) w->PutDouble(c.x[i]);
  w->PutU8(c.label >= 0 ? 1 : 0);
}

Result<LinearSvm::Constraint> LinearSvm::DeserializeConstraint(
    BitReader* r) const {
  auto d = r->GetU32();
  if (!d.ok()) return d.status();
  // Reject dimensions the buffer cannot hold before allocating (8 bytes per
  // coordinate): decoding untrusted input must fail cleanly, never OOM.
  if (*d > r->remaining() / 8) {
    return Status::OutOfRange("SvmPoint dimension exceeds buffer");
  }
  Constraint c;
  c.x = Vec(*d);
  for (size_t i = 0; i < *d; ++i) {
    auto x = r->GetDouble();
    if (!x.ok()) return x.status();
    c.x[i] = *x;
  }
  auto label = r->GetU8();
  if (!label.ok()) return label.status();
  c.label = *label ? 1 : -1;
  return c;
}

}  // namespace lplow

// Smallest enclosing annulus (spherical shell) as an LP-type problem:
//
//   min R^2 - r^2  s.t.  r <= || p_j - c || <= R  for all points p_j.
//
// With u = R^2 - ||c||^2 and l = r^2 - ||c||^2 the squared-distance bounds
// become linear in z = (c, u, l) in R^{d+2}:
//
//   -2 p.c - u <= -||p||^2     and     2 p.c + l <= ||p||^2,
//
// so f(A) = u - l (then lex center) is an LP over the point subset A —
// adding points only widens the required shell, Property (P1). nu <= d + 3,
// lambda <= d + 3. This is the classic roundness-measurement formulation.

#ifndef LPLOW_PROBLEMS_ENCLOSING_ANNULUS_H_
#define LPLOW_PROBLEMS_ENCLOSING_ANNULUS_H_

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/scan_kernel.h"
#include "src/geometry/vec.h"
#include "src/solvers/lex_lp.h"
#include "src/solvers/lp_types.h"

namespace lplow {

class EnclosingAnnulus {
 public:
  using Constraint = Vec;  // A point the shell must cover.

  /// The empty-set value (empty = true) is the minimal element: every point
  /// violates it. Infeasible (a point beyond the solver box) is maximal.
  /// For a solved value, u/l are the shifted squared-radius bounds:
  /// R^2 = u + ||center||^2, r^2 = l + ||center||^2.
  struct Value {
    bool empty = true;
    bool feasible = true;
    Vec center;
    double u = 0;  // Outer bound: ||p - c||^2 - ||c||^2 <= u.
    double l = 0;  // Inner bound: ||p - c||^2 - ||c||^2 >= l.

    double width() const { return u - l; }  // R^2 - r^2, the f-value.
  };

  explicit EnclosingAnnulus(size_t dim, SolverConfig config = {});

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;
  Value SolveValue(std::span<const Constraint> constraints) const;

  bool Violates(const Value& value, const Constraint& c) const;

  /// Order: empty minimal, infeasible maximal, else (u - l, lex center, u).
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 3; }
  size_t VcDimension() const { return dim_ + 3; }

  size_t ConstraintBytes(const Constraint& c) const { return 4 + 8 * c.dim(); }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const;
  Result<Constraint> DeserializeConstraint(BitReader* r) const;

  size_t dim() const { return dim_; }
  const SolverConfig& solver_config() const { return config_; }

  /// ||p||^2 in ascending-coordinate order, shared by the violation test
  /// and the SIMD mirror so both sides see the same bit pattern.
  static double PointNormSq(const Vec& p) { return p.NormSquared(); }

  /// Shell-test thresholds t0/t1 = u/l widened by the violation tolerance,
  /// shared by Violates and the SIMD query.
  double OuterBound(const Value& v) const {
    return v.u + config_.violation_tol * BoundScale(v);
  }
  double InnerBound(const Value& v) const {
    return v.l - config_.violation_tol * BoundScale(v);
  }

 private:
  static double BoundScale(const Value& v) {
    return std::max({1.0, std::fabs(v.u), std::fabs(v.l)});
  }
  /// ||p||^2 - dot(p, 2*center), accumulated in exactly the
  /// kDotOutsideBand kernel's order.
  double ShellValue(const Value& v, const Constraint& c) const;

  size_t dim_;
  SolverConfig config_;
  Vec objective_;  // Minimize u - l over z = (c, u, l).
  LexLpSolver solver_;
};

static_assert(LpTypeProblem<EnclosingAnnulus>);

namespace engine {

/// SIMD violator scan for the annulus: lane i mirrors the point coordinates
/// plus aux0 = ||p||^2, the query is q = 2*center, and the kDotOutsideBand
/// kernel reproduces the shell test l - tol <= ||p||^2 - q.p <= u + tol
/// (NaN violates).
template <>
struct SimdScannable<EnclosingAnnulus> {
  static constexpr bool enabled = true;
  static constexpr size_t kAux = 1;

  static size_t Dim(const EnclosingAnnulus&, const Vec& c) { return c.dim(); }

  static bool Mirror(const EnclosingAnnulus&, const Vec& c, SoaBlock* soa,
                     size_t lane) {
    for (size_t d = 0; d < c.dim(); ++d) soa->Set(d, lane, c[d]);
    soa->SetAux(0, lane, EnclosingAnnulus::PointNormSq(c));
    return true;
  }

  static ScanQuery MakeQuery(const EnclosingAnnulus& problem,
                             const EnclosingAnnulus::Value& value,
                             size_t dim) {
    ScanQuery q;
    q.op = ScanOp::kDotOutsideBand;
    if (!value.feasible) {
      q.mode = ScanQuery::Mode::kNoneViolate;  // Infeasible is maximal.
      return q;
    }
    if (value.empty) {
      q.mode = ScanQuery::Mode::kAllViolate;  // f(empty): minimal element.
      return q;
    }
    if (value.center.dim() != dim) return q;  // kUnsupported
    q.mode = ScanQuery::Mode::kKernel;
    q.q.resize(dim);
    for (size_t d = 0; d < dim; ++d) q.q[d] = 2.0 * value.center[d];
    q.t0 = problem.OuterBound(value);
    q.t1 = problem.InnerBound(value);
    return q;
  }
};

}  // namespace engine

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_ENCLOSING_ANNULUS_H_

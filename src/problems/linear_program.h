// Linear programming as an LP-type problem (paper Section 4.1).
//
//   min c.x  s.t.  a_j.x <= b_j,  within the solver's bounding box.
//
// f(A) is the lexicographically smallest optimal point on the constraint
// subset A (Proposition 4.1's construction: one LP for the optimum value,
// then d coordinate-fixing LPs), with range ordered by
// (objective, lexicographic point) and Infeasible as the maximal element.
// Combinatorial dimension nu <= d + 1, VC dimension lambda <= d + 1 (the set
// system of halfspaces).

#ifndef LPLOW_PROBLEMS_LINEAR_PROGRAM_H_
#define LPLOW_PROBLEMS_LINEAR_PROGRAM_H_

#include <cmath>
#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/scan_kernel.h"
#include "src/geometry/halfspace.h"
#include "src/solvers/lex_lp.h"
#include "src/solvers/lp_types.h"

namespace lplow {

class LinearProgram {
 public:
  using Constraint = Halfspace;

  /// Range element of f: a lexicographically-minimal optimum or Infeasible
  /// (the maximal element of the order).
  struct Value {
    bool feasible = true;
    Vec point;            // Valid iff feasible.
    double objective = 0;  // c . point.
  };

  /// `objective` fixes both the dimension d and the direction c.
  explicit LinearProgram(Vec objective, SolverConfig config = {});

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;

  /// f alone: the lexicographically smallest optimum, without basis
  /// extraction.
  Value SolveValue(std::span<const Constraint> constraints) const;

  /// Property-(P2) violation: the optimal point fails the constraint. An
  /// Infeasible value is maximal, so nothing violates it.
  bool Violates(const Value& value, const Constraint& c) const;

  /// Order: feasible values by (objective, lex point) within tolerance;
  /// Infeasible greater than every feasible value.
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 1; }
  size_t VcDimension() const { return dim_ + 1; }

  size_t ConstraintBytes(const Constraint& c) const {
    return c.SerializedBytes();
  }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const {
    c.Serialize(w);
  }
  Result<Constraint> DeserializeConstraint(BitReader* r) const {
    return Halfspace::Deserialize(r);
  }

  size_t dim() const { return dim_; }
  const Vec& objective() const { return objective_; }
  const SolverConfig& solver_config() const { return config_; }

 private:
  // Incremental basis repair: grow T by most-violated constraints until
  // nothing in `constraints` violates f(T). Returns the final value and T.
  BasisResult<Value, Constraint> RepairLoop(
      std::vector<Constraint> t, std::span<const Constraint> constraints) const;

  Value ValueFromSolution(const LpSolution& s) const;

  size_t dim_;
  Vec objective_;
  SolverConfig config_;
  LexLpSolver solver_;
};

static_assert(LpTypeProblem<LinearProgram>);

namespace engine {

/// SIMD violator scan for LP (docs/engine.md §"SIMD violator scan"): lane i
/// mirrors halfspace a.x <= b as (columns = a, aux0 = b, aux1 = the
/// tolerance scale max(1, |b|), precomputed scalar-side — SIMD max has
/// different NaN semantics than std::max). The kHalfspace kernel then
/// reproduces Violates operation for operation.
template <>
struct SimdScannable<LinearProgram> {
  static constexpr bool enabled = true;
  static constexpr size_t kAux = 2;

  static size_t Dim(const LinearProgram&, const Halfspace& c) {
    return c.dim();
  }

  static bool Mirror(const LinearProgram&, const Halfspace& c, SoaBlock* soa,
                     size_t lane) {
    for (size_t d = 0; d < c.dim(); ++d) soa->Set(d, lane, c.a[d]);
    soa->SetAux(0, lane, c.b);
    soa->SetAux(1, lane, std::max(1.0, std::fabs(c.b)));
    return true;
  }

  static ScanQuery MakeQuery(const LinearProgram& problem,
                             const LinearProgram::Value& value, size_t dim) {
    ScanQuery q;
    q.op = ScanOp::kHalfspace;
    if (!value.feasible) {
      q.mode = ScanQuery::Mode::kNoneViolate;  // Infeasible is maximal.
      return q;
    }
    if (value.point.dim() != dim) return q;  // kUnsupported
    q.mode = ScanQuery::Mode::kKernel;
    q.q = value.point.data();
    q.t0 = problem.solver_config().violation_tol;
    return q;
  }
};

}  // namespace engine

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_LINEAR_PROGRAM_H_

// Chebyshev center (largest inscribed ball of a polytope) as an LP-type
// problem:
//
//   max r  s.t.  a_j.x + ||a_j|| r <= b_j  for all halfspaces a_j.x <= b_j.
//
// f(A) is the (radius-maximal, then lexicographically-smallest-center)
// inscribed ball of the halfspace subset A, ordered by DECREASING radius:
// adding a halfspace shrinks the polytope, so the radius is nonincreasing
// and f is monotone nondecreasing — exactly Property (P1). The problem is a
// linear program in the lifted variable z = (x, r) in R^{d+1}, so
// nu <= d + 2 and lambda <= d + 2.

#ifndef LPLOW_PROBLEMS_CHEBYSHEV_CENTER_H_
#define LPLOW_PROBLEMS_CHEBYSHEV_CENTER_H_

#include <cmath>
#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/scan_kernel.h"
#include "src/geometry/halfspace.h"
#include "src/solvers/lex_lp.h"
#include "src/solvers/lp_types.h"

namespace lplow {

class ChebyshevCenter {
 public:
  using Constraint = Halfspace;

  /// A center/radius pair, or Infeasible (the maximal element: only a
  /// degenerate constraint like 0.x <= -1 can make the lifted LP
  /// infeasible inside the solver box). A negative radius is a valid
  /// feasible value — it means the polytope itself is empty, but the
  /// lifted LP still has a unique optimum.
  struct Value {
    bool feasible = true;
    Vec center;        // Valid iff feasible.
    double radius = 0;  // Signed inscribed radius.
  };

  explicit ChebyshevCenter(size_t dim, SolverConfig config = {});

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;
  Value SolveValue(std::span<const Constraint> constraints) const;

  bool Violates(const Value& value, const Constraint& c) const;

  /// Order: radius DESCENDING (larger ball = smaller f), then lex center;
  /// Infeasible greater than everything.
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 2; }
  size_t VcDimension() const { return dim_ + 2; }

  size_t ConstraintBytes(const Constraint& c) const {
    return c.SerializedBytes();
  }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const {
    c.Serialize(w);
  }
  Result<Constraint> DeserializeConstraint(BitReader* r) const {
    return Halfspace::Deserialize(r);
  }

  size_t dim() const { return dim_; }
  const SolverConfig& solver_config() const { return config_; }

  /// The lifted-row scale ||a||, shared by Violates and the SIMD mirror so
  /// both sides see the same bit pattern.
  static double RowScale(const Constraint& c) {
    return std::sqrt(c.a.NormSquared());
  }

 private:
  /// The halfspace a.x + ||a|| r <= b over z = (x, r).
  Constraint Lift(const Constraint& c) const;
  /// Signed slack of the lifted constraint at (center, radius), accumulated
  /// in exactly the kHalfspace kernel's order.
  double LiftedSlack(const Value& v, const Constraint& c) const;
  BasisResult<Value, Constraint> RepairLoop(
      std::vector<Constraint> t, std::span<const Constraint> constraints) const;
  Value ValueFromSolution(const LpSolution& s) const;

  size_t dim_;
  SolverConfig config_;
  Vec objective_;  // Minimize -r over z = (x, r).
  LexLpSolver solver_;
};

static_assert(LpTypeProblem<ChebyshevCenter>);

namespace engine {

/// SIMD violator scan for the Chebyshev center: lane i mirrors the LIFTED
/// halfspace (columns = a_0..a_{d-1}, ||a||; aux0 = b, aux1 = max(1, |b|)),
/// the query is (center..., radius), and the existing kHalfspace kernel
/// reproduces the lifted violation test operation for operation.
template <>
struct SimdScannable<ChebyshevCenter> {
  static constexpr bool enabled = true;
  static constexpr size_t kAux = 2;

  static size_t Dim(const ChebyshevCenter&, const Halfspace& c) {
    return c.dim() + 1;
  }

  static bool Mirror(const ChebyshevCenter&, const Halfspace& c, SoaBlock* soa,
                     size_t lane) {
    for (size_t d = 0; d < c.dim(); ++d) soa->Set(d, lane, c.a[d]);
    soa->Set(c.dim(), lane, ChebyshevCenter::RowScale(c));
    soa->SetAux(0, lane, c.b);
    soa->SetAux(1, lane, std::max(1.0, std::fabs(c.b)));
    return true;
  }

  static ScanQuery MakeQuery(const ChebyshevCenter& problem,
                             const ChebyshevCenter::Value& value, size_t dim) {
    ScanQuery q;
    q.op = ScanOp::kHalfspace;
    if (!value.feasible) {
      q.mode = ScanQuery::Mode::kNoneViolate;  // Infeasible is maximal.
      return q;
    }
    if (value.center.dim() + 1 != dim) return q;  // kUnsupported
    q.mode = ScanQuery::Mode::kKernel;
    q.q = value.center.data();
    q.q.push_back(value.radius);
    q.t0 = problem.solver_config().violation_tol;
    return q;
  }
};

}  // namespace engine

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_CHEBYSHEV_CENTER_H_

// Minimum enclosing ball (core vector machine) as an LP-type problem (paper
// Section 4.3):
//
//   min r  s.t.  || p - p_j || <= r  for all points p_j.
//
// f(A) is the minimum enclosing ball of the point subset A, ordered by
// radius. Always feasible. nu <= d + 1, lambda <= d + 1 (balls in R^d).

#ifndef LPLOW_PROBLEMS_MIN_ENCLOSING_BALL_H_
#define LPLOW_PROBLEMS_MIN_ENCLOSING_BALL_H_

#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/scan_kernel.h"
#include "src/solvers/welzl.h"

namespace lplow {

class MinEnclosingBall {
 public:
  using Constraint = Vec;  // A point to enclose.

  struct Value {
    Ball ball;  // Empty ball for the empty constraint set.
  };

  struct Config {
    WelzlSolver::Config solver;
    /// Tolerance for the violation test (distance beyond radius).
    double contain_tol = 1e-7;
    /// Relative tolerance comparing radii.
    double value_tol = 1e-7;
  };

  explicit MinEnclosingBall(size_t dim) : MinEnclosingBall(dim, Config()) {}
  MinEnclosingBall(size_t dim, Config config);

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;
  Value SolveValue(std::span<const Constraint> constraints) const;

  bool Violates(const Value& value, const Constraint& c) const;
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 1; }
  size_t VcDimension() const { return dim_ + 1; }

  size_t ConstraintBytes(const Constraint& c) const { return 4 + 8 * c.dim(); }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const;
  Result<Constraint> DeserializeConstraint(BitReader* r) const;

  size_t dim() const { return dim_; }
  const Config& config() const { return config_; }

 private:
  size_t dim_;
  Config config_;
  WelzlSolver solver_;
};

static_assert(LpTypeProblem<MinEnclosingBall>);

namespace engine {

/// SIMD violator scan for MEB: lane i mirrors the point coordinates, and
/// the kDistanceOutside kernel reproduces !Ball::Contains — the same
/// subtract / square-accumulate / sqrt sequence, against
/// t0 = radius + contain_tol (the addition precomputed scalar-side).
template <>
struct SimdScannable<MinEnclosingBall> {
  static constexpr bool enabled = true;
  static constexpr size_t kAux = 0;

  static size_t Dim(const MinEnclosingBall&, const Vec& c) { return c.dim(); }

  static bool Mirror(const MinEnclosingBall&, const Vec& c, SoaBlock* soa,
                     size_t lane) {
    for (size_t d = 0; d < c.dim(); ++d) soa->Set(d, lane, c[d]);
    return true;
  }

  static ScanQuery MakeQuery(const MinEnclosingBall& problem,
                             const MinEnclosingBall::Value& value,
                             size_t dim) {
    ScanQuery q;
    q.op = ScanOp::kDistanceOutside;
    if (value.ball.empty()) {
      q.mode = ScanQuery::Mode::kAllViolate;  // Any point violates it.
      return q;
    }
    if (value.ball.center.dim() != dim) return q;  // kUnsupported
    q.mode = ScanQuery::Mode::kKernel;
    q.q = value.ball.center.data();
    q.t0 = value.ball.radius + problem.config().contain_tol;
    return q;
  }
};

}  // namespace engine

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_MIN_ENCLOSING_BALL_H_

// Minimum enclosing ball (core vector machine) as an LP-type problem (paper
// Section 4.3):
//
//   min r  s.t.  || p - p_j || <= r  for all points p_j.
//
// f(A) is the minimum enclosing ball of the point subset A, ordered by
// radius. Always feasible. nu <= d + 1, lambda <= d + 1 (balls in R^d).

#ifndef LPLOW_PROBLEMS_MIN_ENCLOSING_BALL_H_
#define LPLOW_PROBLEMS_MIN_ENCLOSING_BALL_H_

#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/solvers/welzl.h"

namespace lplow {

class MinEnclosingBall {
 public:
  using Constraint = Vec;  // A point to enclose.

  struct Value {
    Ball ball;  // Empty ball for the empty constraint set.
  };

  struct Config {
    WelzlSolver::Config solver;
    /// Tolerance for the violation test (distance beyond radius).
    double contain_tol = 1e-7;
    /// Relative tolerance comparing radii.
    double value_tol = 1e-7;
  };

  explicit MinEnclosingBall(size_t dim) : MinEnclosingBall(dim, Config()) {}
  MinEnclosingBall(size_t dim, Config config);

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;
  Value SolveValue(std::span<const Constraint> constraints) const;

  bool Violates(const Value& value, const Constraint& c) const;
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 1; }
  size_t VcDimension() const { return dim_ + 1; }

  size_t ConstraintBytes(const Constraint& c) const { return 4 + 8 * c.dim(); }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const;
  Result<Constraint> DeserializeConstraint(BitReader* r) const;

  size_t dim() const { return dim_; }
  const Config& config() const { return config_; }

 private:
  size_t dim_;
  Config config_;
  WelzlSolver solver_;
};

static_assert(LpTypeProblem<MinEnclosingBall>);

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_MIN_ENCLOSING_BALL_H_

#include "src/problems/linear_program.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace lplow {

LinearProgram::LinearProgram(Vec objective, SolverConfig config)
    : dim_(objective.dim()),
      objective_(std::move(objective)),
      config_(config),
      solver_(config) {
  LPLOW_CHECK_GE(dim_, 1u);
}

LinearProgram::Value LinearProgram::ValueFromSolution(
    const LpSolution& s) const {
  Value v;
  if (!s.optimal()) {
    v.feasible = false;
    return v;
  }
  v.feasible = true;
  v.point = s.point;
  v.objective = s.objective;
  return v;
}

int LinearProgram::CompareValues(const Value& a, const Value& b) const {
  if (!a.feasible || !b.feasible) {
    if (a.feasible == b.feasible) return 0;
    return a.feasible ? -1 : 1;  // Infeasible is the maximal element.
  }
  double tol = config_.compare_tol *
               std::max({1.0, std::fabs(a.objective), std::fabs(b.objective)});
  if (a.objective < b.objective - tol) return -1;
  if (a.objective > b.objective + tol) return 1;
  double lex_tol = config_.compare_tol *
                   std::max({1.0, a.point.InfNorm(), b.point.InfNorm()});
  return a.point.LexCompare(b.point, lex_tol);
}

bool LinearProgram::Violates(const Value& value, const Constraint& c) const {
  if (!value.feasible) return false;
  // Tolerance scales with the constraint magnitude (slack error is relative).
  return !c.Contains(value.point,
                     config_.violation_tol * std::max(1.0, std::fabs(c.b)));
}

BasisResult<LinearProgram::Value, LinearProgram::Constraint>
LinearProgram::RepairLoop(std::vector<Constraint> t,
                          std::span<const Constraint> constraints) const {
  // Each appended constraint strictly increases f(T), so the loop
  // terminates; the cap is a numerical-safety backstop.
  const size_t cap = constraints.size() + 2 * dim_ + 4;
  for (size_t step = 0; step <= cap; ++step) {
    LpSolution sol = solver_.Solve(t, objective_);
    if (!sol.optimal()) {
      // T is infeasible: prune it to a small core (|T| stays small, so the
      // quadratic greedy is cheap) and report Infeasible.
      size_t i = 0;
      while (i < t.size()) {
        std::vector<Constraint> without;
        without.reserve(t.size() - 1);
        for (size_t j = 0; j < t.size(); ++j) {
          if (j != i) without.push_back(t[j]);
        }
        if (!solver_.Solve(without, objective_).optimal()) {
          t = std::move(without);
        } else {
          ++i;
        }
      }
      Value v;
      v.feasible = false;
      return {v, std::move(t)};
    }
    // Most-violated constraint in the full set.
    double worst = -config_.violation_tol;
    size_t worst_idx = constraints.size();
    for (size_t i = 0; i < constraints.size(); ++i) {
      double slack = constraints[i].Slack(sol.point);
      if (slack < worst) {
        worst = slack;
        worst_idx = i;
      }
    }
    if (worst_idx == constraints.size()) {
      // Nothing violates: f(T) = f(A). Trim T to the tight constraints and
      // prune.
      Value value = ValueFromSolution(sol);
      std::vector<Constraint> tight;
      for (const Constraint& h : t) {
        if (std::fabs(h.Slack(sol.point)) <=
            config_.tight_tol * std::max(1.0, std::fabs(h.b))) {
          tight.push_back(h);
        }
      }
      if (tight.empty()) return {value, {}};
      // Verify the tight set reproduces the value before pruning; fall back
      // to T itself if numerical drift broke the equivalence.
      LpSolution check = solver_.Solve(tight, objective_);
      if (CompareValues(ValueFromSolution(check), value) != 0) {
        return {value, std::move(t)};
      }
      std::vector<Constraint> basis = GreedyMinimizeBasis(*this, tight, value);
      return {value, std::move(basis)};
    }
    t.push_back(constraints[worst_idx]);
  }
  LPLOW_LOG(kWarning) << "LinearProgram::RepairLoop cap reached";
  LpSolution sol = solver_.Solve(t, objective_);
  return {ValueFromSolution(sol), std::move(t)};
}

LinearProgram::Value LinearProgram::SolveValue(
    std::span<const Constraint> constraints) const {
  std::vector<Constraint> all(constraints.begin(), constraints.end());
  return ValueFromSolution(solver_.Solve(all, objective_));
}

BasisResult<LinearProgram::Value, LinearProgram::Constraint>
LinearProgram::SolveBasis(std::span<const Constraint> constraints) const {
  if (constraints.empty()) {
    LpSolution sol = solver_.Solve({}, objective_);
    return {ValueFromSolution(sol), {}};
  }
  std::vector<Constraint> all(constraints.begin(), constraints.end());
  LpSolution sol = solver_.Solve(all, objective_);
  if (!sol.optimal()) {
    // Infeasible input: grow a core incrementally (cheaper than pruning the
    // full set).
    return RepairLoop({}, constraints);
  }
  Value value = ValueFromSolution(sol);
  // Tight constraints at the optimum (dedup exact repeats to keep the
  // pruning cheap on with-replacement samples). The threshold scales with
  // the constraint magnitude: slack drift is relative.
  std::vector<Constraint> tight;
  for (const Constraint& h : all) {
    if (std::fabs(h.Slack(sol.point)) <=
        config_.tight_tol * std::max(1.0, std::fabs(h.b))) {
      bool dup = false;
      for (const Constraint& g : tight) {
        if (g.b == h.b && g.a.ApproxEquals(h.a, 0.0)) {
          dup = true;
          break;
        }
      }
      if (!dup) tight.push_back(h);
    }
  }
  if (tight.empty()) {
    // Optimum interior to all sampled constraints (box-determined).
    return {value, {}};
  }
  LpSolution check = solver_.Solve(tight, objective_);
  if (CompareValues(ValueFromSolution(check), value) != 0) {
    // Degenerate/numerically drifted: rebuild by incremental repair.
    return RepairLoop({}, constraints);
  }
  std::vector<Constraint> basis = GreedyMinimizeBasis(*this, tight, value);
  return {value, std::move(basis)};
}

}  // namespace lplow

// Hard-margin linear SVM as an LP-type problem (paper Section 4.2):
//
//   min ||u||^2   s.t.   y_j <u, x_j> >= 1.
//
// f(A) is the (unique) optimal ||u||^2 on the constraint subset A, with
// Non-separable as the maximal range element. nu <= d + 1, lambda <= d + 1.

#ifndef LPLOW_PROBLEMS_LINEAR_SVM_H_
#define LPLOW_PROBLEMS_LINEAR_SVM_H_

#include <span>
#include <vector>

#include "src/core/lp_type.h"
#include "src/engine/scan_kernel.h"
#include "src/solvers/svm_qp.h"

namespace lplow {

class LinearSvm {
 public:
  using Constraint = SvmPoint;

  struct Value {
    bool separable = true;
    double norm_squared = 0;  // ||u*||^2; 0 for the empty constraint set.
    Vec u;                    // The maximum-margin normal.
  };

  struct Config {
    SvmSolver::Config solver;
    /// Margin tolerance for the violation test: violated iff
    /// y <u, x> < 1 - margin_tol.
    double margin_tol = 1e-4;
    /// Relative tolerance when comparing ||u||^2 values (must absorb the
    /// iterative solver's residual when the exact polish does not apply).
    double value_tol = 1e-3;
  };

  explicit LinearSvm(size_t dim) : LinearSvm(dim, Config()) {}
  LinearSvm(size_t dim, Config config);

  BasisResult<Value, Constraint> SolveBasis(
      std::span<const Constraint> constraints) const;
  Value SolveValue(std::span<const Constraint> constraints) const;

  bool Violates(const Value& value, const Constraint& c) const;
  int CompareValues(const Value& a, const Value& b) const;

  size_t CombinatorialDimension() const { return dim_ + 1; }
  size_t VcDimension() const { return dim_ + 1; }

  size_t ConstraintBytes(const Constraint& c) const {
    return 4 + 8 * c.x.dim() + 1;
  }
  void SerializeConstraint(const Constraint& c, BitWriter* w) const;
  Result<Constraint> DeserializeConstraint(BitReader* r) const;

  size_t dim() const { return dim_; }
  const Config& config() const { return config_; }

 private:
  size_t dim_;
  Config config_;
  SvmSolver solver_;
};

static_assert(LpTypeProblem<LinearSvm>);

namespace engine {

/// SIMD violator scan for SVM: lane i mirrors the signed constraint normal
/// z = y * x (each coordinate computed exactly as SvmPoint::Z does, sign
/// flip via * -1.0), and the kDotBelowThreshold kernel reproduces
/// z.Dot(u) < 1 - margin_tol.
template <>
struct SimdScannable<LinearSvm> {
  static constexpr bool enabled = true;
  static constexpr size_t kAux = 0;

  static size_t Dim(const LinearSvm&, const SvmPoint& c) { return c.x.dim(); }

  static bool Mirror(const LinearSvm&, const SvmPoint& c, SoaBlock* soa,
                     size_t lane) {
    for (size_t d = 0; d < c.x.dim(); ++d) {
      soa->Set(d, lane, c.label >= 0 ? c.x[d] : c.x[d] * -1.0);
    }
    return true;
  }

  static ScanQuery MakeQuery(const LinearSvm& problem,
                             const LinearSvm::Value& value, size_t dim) {
    ScanQuery q;
    q.op = ScanOp::kDotBelowThreshold;
    if (!value.separable) {
      q.mode = ScanQuery::Mode::kNoneViolate;  // Non-separable is maximal.
      return q;
    }
    if (value.u.dim() == 0) {
      q.mode = ScanQuery::Mode::kAllViolate;  // f(empty): u = 0.
      return q;
    }
    if (value.u.dim() != dim) return q;  // kUnsupported
    q.mode = ScanQuery::Mode::kKernel;
    q.q = value.u.data();
    q.t0 = 1.0 - problem.config().margin_tol;
    return q;
  }
};

}  // namespace engine

}  // namespace lplow

#endif  // LPLOW_PROBLEMS_LINEAR_SVM_H_

# lplow_add_module(<name> SOURCES <src>... [DEPS <lplow::target>...])
#
# Declares one module library `lplow_<name>` with alias `lplow::<name>`,
# attaches the shared build flags, and links the listed module dependencies.
# Keeping every module on this one entry point keeps the layering explicit:
# a module's CMakeLists.txt is exactly its sources plus the modules it is
# allowed to see.
function(lplow_add_module name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "lplow_add_module(${name}): SOURCES required")
  endif()
  add_library(lplow_${name} STATIC ${ARG_SOURCES})
  add_library(lplow::${name} ALIAS lplow_${name})
  target_link_libraries(lplow_${name} PUBLIC lplow::build_flags ${ARG_DEPS})
endfunction()
